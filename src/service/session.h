// Warm diagnosis sessions (the serving-path realization of paper §4.8).
//
// A WarmSession owns one problem (program + topology + recorded log) and
// keeps its replayed execution *resident*: the provenance graph and the
// replayed engine from the first query stay in memory, so every later query
// against the same log skips the initial full replay entirely -- the warm
// run is handed to diagnose_problem as the initial bad run, which is sound
// because replay is deterministic (identical graph, identical answer bytes).
//
// On first warm-up the session also captures a Checkpoint of the engine's
// base state. That is the session's cheap tier: when the manager cools a
// session under memory pressure (LRU beyond max_warm), the heavy resident
// run is dropped but the checkpoint stays. Live-state probes ("is this flow
// entry present?") are then served from an engine *restored from the
// checkpoint plus the log suffix after the capture time* -- state
// reconstruction without paying for the full history, exactly the paper's
// "log of tuple updates along with some checkpoints" design. Re-running a
// full diagnosis on a cooled session does replay again (provenance vertex
// times must match the original history for byte-identical answers; a
// checkpoint restore re-bases them), and the metrics make that cost visible:
// dp.service.session.{cold_replays,warm_hits,checkpoint_restores,evictions}.
//
// Engines are single-threaded, so each session carries a mutex: the worker
// pool serializes queries per session while different sessions proceed in
// parallel.
#pragma once

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "diffprov/diffprov.h"
#include "obs/metrics.h"
#include "replay/checkpoint.h"
#include "service/problem.h"

namespace dp::service {

struct SessionStats {
  std::uint64_t queries = 0;        // ensure_warm calls (diagnosis queries)
  std::uint64_t warm_hits = 0;      // served from the resident run
  std::uint64_t cold_replays = 0;   // full replays (first use / after cool)
  std::uint64_t probes = 0;         // live-state probes
  std::uint64_t checkpoint_restores = 0;
};

class WarmSession {
 public:
  WarmSession(std::string key, Problem problem, ReplayOptions options,
              obs::MetricsRegistry& registry);

  /// Per-session serialization: hold this while calling ensure_warm,
  /// probe_live, or running a diagnosis against the returned run.
  [[nodiscard]] std::mutex& mutex() { return mutex_; }

  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] const Problem& problem() const { return problem_; }
  [[nodiscard]] std::uint64_t log_hash() const { return log_hash_; }

  /// Returns the resident replayed run, replaying the log first if this is
  /// the session's first query (or its first after cool()). Caller holds
  /// mutex().
  std::shared_ptr<const BadRun> ensure_warm();

  /// True if the resident run is in memory (cheap; caller holds mutex()).
  [[nodiscard]] bool is_warm() const { return run_ != nullptr; }

  /// Measured bytes of the resident provenance graph (the store-backed
  /// columnar footprint), 0 when cooled. Updated at warm-up, cleared by
  /// cool(); readable without mutex() so the manager can total footprints
  /// while workers are mid-query.
  [[nodiscard]] std::uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

  /// Drops the resident run and probe engine; the checkpoint (if one was
  /// captured) survives. Caller holds mutex().
  void cool();

  /// Is `tuple` live at the end of the recorded execution? Served from the
  /// resident engine when warm; on a cooled session, from an engine restored
  /// from the checkpoint + log suffix (no full replay). Caller holds
  /// mutex().
  bool probe_live(const Tuple& tuple);

  [[nodiscard]] const SessionStats& stats() const { return stats_; }

 private:
  std::unique_ptr<Engine> restore_from_checkpoint();

  std::string key_;
  Problem problem_;
  ReplayOptions options_;
  std::uint64_t log_hash_ = 0;
  obs::MetricsRegistry* registry_;

  std::mutex mutex_;
  // Resident tier: the first query's replay, kept alive for reuse.
  std::shared_ptr<Engine> engine_;
  std::shared_ptr<ProvenanceRecorder> recorder_;
  std::unique_ptr<MetricsObserver> metrics_observer_;
  std::shared_ptr<const BadRun> run_;
  // Cheap tier: base-state snapshot at quiescence + restored probe engine.
  std::optional<Checkpoint> checkpoint_;
  std::unique_ptr<Engine> probe_engine_;
  // Warm footprint, measured from the replayed graph (see resident_bytes()).
  std::atomic<std::uint64_t> resident_bytes_{0};

  SessionStats stats_;
};

/// Canonical key for an inline problem (program + log text): "inline:<hex>"
/// over the content hash. Exposed so the sharded service can route a query
/// to its shard before (and without) creating the session.
std::string inline_session_key(const std::string& program_text,
                               const std::string& log_text);

/// Shared byte-budget ledger for the sharded warm tier. Each shard's
/// SessionManager publishes its measured warm bytes into its `usage` slot,
/// so cooling spends one *global* budget across shards: a shard whose warm
/// set outgrows its nominal share (total/shards) keeps it for as long as the
/// other shards leave the global budget unused -- the lightweight
/// cross-shard rebalance -- and starts cooling only once the global total is
/// exceeded *and* it is above its own share. Shards never lock each other;
/// the ledger is relaxed atomics and the worst case of the race is one
/// enforcement pass of staleness.
class WarmBudgetLedger {
 public:
  /// `total_bytes` = the service-wide warm budget (0 = unlimited);
  /// `shards` = number of shard usage slots (clamped to at least 1);
  /// `extra_slots` = additional slots beyond the shards for other resident
  /// tiers (the live-ingest streams publish into slot `shards`): they hold
  /// no nominal share, but their bytes count toward global_usage(), so a
  /// growing ingest tier pushes the warm set toward cooling -- and flips
  /// over_budget(), which the ingest maintenance pass reads as pressure.
  WarmBudgetLedger(std::uint64_t total_bytes, std::size_t shards,
                   std::size_t extra_slots = 0);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// A shard's nominal slice of the budget (total/shards; 0 = unlimited).
  [[nodiscard]] std::uint64_t share() const { return share_; }
  void publish(std::size_t shard, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t usage(std::size_t shard) const;
  [[nodiscard]] std::uint64_t global_usage() const;
  /// Over the global budget right now? (Always false when unlimited.)
  [[nodiscard]] bool over_budget() const {
    return total_ != 0 && global_usage() > total_;
  }

 private:
  std::uint64_t total_;
  std::uint64_t share_;
  std::vector<std::atomic<std::uint64_t>> usage_;
};

/// Keyed store of warm sessions with an LRU warm-set budget driven by
/// *measured* footprint: sessions report the resident bytes of their replayed
/// provenance graph (via the store metrics), and least-recently-used sessions
/// are cooled to their checkpoint tier while the warm set exceeds the byte
/// budget (see WarmBudgetLedger) or `max_warm` sessions. The most recently
/// used session is never cooled, and neither is a session a worker is inside
/// (eviction try-locks and skips busy sessions).
class SessionManager {
 public:
  /// Standalone manager (the single-shard service and the tests): owns a
  /// private one-slot ledger with `warm_bytes_budget` as its total.
  SessionManager(std::size_t max_warm, std::uint64_t warm_bytes_budget,
                 ReplayOptions options, obs::MetricsRegistry& registry);

  /// Sharded manager: budget decisions run against the shared `ledger`,
  /// publishing this shard's usage into slot `shard_index`.
  SessionManager(std::size_t max_warm, std::shared_ptr<WarmBudgetLedger> ledger,
                 std::size_t shard_index, ReplayOptions options,
                 obs::MetricsRegistry& registry);

  /// Session for a built-in scenario; creates it on first use. Unknown
  /// scenario: returns nullptr and sets `error`.
  std::shared_ptr<WarmSession> get_scenario(const std::string& name,
                                            std::string& error);

  /// Session for an inline problem (program + log text, keyed by content
  /// hash). Malformed input: returns nullptr and sets `error`.
  std::shared_ptr<WarmSession> get_inline(const std::string& program_text,
                                          const std::string& log_text,
                                          std::string& error);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t warm_count() const;
  /// Total measured footprint of the warm set (sum of per-session
  /// resident_bytes); also published as dp.service.session.resident_bytes.
  [[nodiscard]] std::uint64_t warm_bytes() const;
  [[nodiscard]] std::vector<std::pair<std::string, SessionStats>> stats() const;

  /// Re-applies the cooling budget. Call after a warm-up changed a session's
  /// footprint (warm-up happens outside the manager lock, so intern-time
  /// enforcement alone would act on stale sizes). Must not be called while
  /// holding any session's mutex.
  ///
  /// Locking contract (the fix for the PR 3 design): the manager mutex is
  /// held only long enough to *snapshot* the candidate list in LRU order --
  /// all footprint accounting (resident_bytes walks) and all cooling happen
  /// outside it, against shared_ptr-pinned sessions, so submitters resolving
  /// sessions never stall behind a budget pass.
  void enforce_budget();

 private:
  std::shared_ptr<WarmSession> intern(const std::string& key,
                                      std::optional<Problem> problem,
                                      std::string& error);
  /// Publishes `bytes` to the ledger and mirrors the *global* usage into the
  /// dp.service.session.resident_bytes gauge.
  void publish_usage(std::uint64_t bytes);

  std::size_t max_warm_;
  std::shared_ptr<WarmBudgetLedger> ledger_;
  std::size_t shard_index_;
  ReplayOptions options_;
  obs::MetricsRegistry* registry_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<WarmSession>> sessions_;
  std::list<std::string> recency_;  // front = most recently used
};

}  // namespace dp::service
