#include "service/slowlog.h"

#include <cstdio>
#include <utility>

#include "obs/json_check.h"
#include "obs/trace.h"

namespace dp::service {

namespace {

std::string format_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

}  // namespace

SlowQueryJournal::SlowQueryJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryJournal::add(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entry.seq = ++captured_;
  entries_.push_back(std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_front();
}

std::size_t SlowQueryJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t SlowQueryJournal::captured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return captured_;
}

std::vector<SlowQueryEntry> SlowQueryJournal::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SlowQueryEntry>(entries_.begin(), entries_.end());
}

std::string render_slowz_json(const std::vector<SlowQueryEntry>& entries,
                              std::uint64_t captured) {
  std::string out = "{\"captured\":" + std::to_string(captured) +
                    ",\"entries\":[";
  bool first = true;
  for (const SlowQueryEntry& e : entries) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"time_us\":" + std::to_string(e.time_us);
    if (e.trace_id != 0) {
      out += ",\"trace_id\":\"" + obs::format_trace_id(e.trace_id) + "\"";
    }
    out += ",\"shard\":" + std::to_string(e.shard);
    out += ",\"key\":" + obs::json_quote(e.key);
    out += ",\"exec_us\":" + format_us(e.exec_us);
    out += ",\"threshold_us\":" + format_us(e.threshold_us);
    // The phase profile and flight-recorder dump are already JSON objects;
    // embed them verbatim so /slowz consumers get structure, not strings.
    out += ",\"profile\":";
    out += e.profile_json.empty() ? "null" : e.profile_json;
    out += ",\"slice\":" + obs::json_quote(e.profile_slice);
    out += ",\"flightrec\":";
    out += e.flightrec_json.empty() ? "null" : e.flightrec_json;
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace dp::service
