#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

/// Bounded journal of automatically captured slow queries.
///
/// When a diagnosis exceeds its adaptive threshold (service.h: k x the live
/// p99 from the exec-latency sketch, floored by --slow-ms), the worker that
/// ran it files a SlowQueryEntry *at completion time*, carrying everything a
/// human would have had to pre-attach to debug it after the fact:
///   - the trace id the client minted (joins against /tracez and logs),
///   - the --explain phase profile the worker already renders,
///   - a flight-recorder snapshot taken at capture (the last ~256 events
///     per thread around the slow run),
///   - the worker's profiler slice: collapsed stacks sampled on that thread
///     while the query ran, plus one synchronous self-sample.
///
/// One journal per shard keeps capture contention off the other shards'
/// workers; DiagnosisService::slowz_json() merges them for /slowz, the
/// `slowz` NDJSON op, and the watchdog/panic stderr dumps.
namespace dp::service {

struct SlowQueryEntry {
  std::uint64_t seq = 0;       // per-journal capture ordinal
  std::uint64_t time_us = 0;   // capture time, obs::monotonic_micros()
  std::uint64_t trace_id = 0;  // 0 = query carried no trace context
  std::string key;             // the cache key (scenario + events + flags)
  std::size_t shard = 0;
  double exec_us = 0;
  double threshold_us = 0;        // the adaptive threshold it exceeded
  std::string profile_json;       // --explain phase profile (JSON object)
  std::string profile_slice;      // collapsed-stack text for the worker
  std::string flightrec_json;     // flight-recorder dump (JSON object)
};

class SlowQueryJournal {
 public:
  /// Keeps the most recent `capacity` entries (older ones fall off).
  explicit SlowQueryJournal(std::size_t capacity);

  void add(SlowQueryEntry entry);

  [[nodiscard]] std::size_t size() const;
  /// Total captures since construction (>= size() once the ring wraps).
  [[nodiscard]] std::uint64_t captured() const;
  [[nodiscard]] std::vector<SlowQueryEntry> snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SlowQueryEntry> entries_;
  std::uint64_t captured_ = 0;
};

/// Renders entries (already merged/sorted by the caller) as the /slowz
/// document: one line, {"captured": N, "entries": [...]}.
std::string render_slowz_json(const std::vector<SlowQueryEntry>& entries,
                              std::uint64_t captured);

}  // namespace dp::service
