// Dense batch primitives for the vectorized execution paths.
//
// The batch evaluator (runtime/engine.cpp) carries a *frontier* of partial
// join matches through each plan step instead of recursing per delta tuple.
// Two small containers make that cheap and allocation-free once warmed up:
//
//   * ValueMatrix      a row-major matrix of Values with a fixed stride --
//                      the flat register files of every frontier row live
//                      side by side, so advancing a batch touches one
//                      contiguous allocation instead of one vector<Value>
//                      per candidate.
//   * SelectionVector  the indices of the rows still alive after a filter
//                      stage (trigger unification, probe verification,
//                      constraint evaluation). Filters compact it in place;
//                      the surviving rows are never copied until a stage
//                      genuinely materializes new state.
//
// Both are deliberately dumb: no ownership tricks, no iterators beyond what
// the hot loops need, reusable via clear()/reset() so the engine keeps one
// of each as scratch.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "ndlog/value.h"

namespace dp::store {

/// Indices of the batch rows surviving the filter stages so far. Start from
/// identity over a batch, then `filter` between stages; the order of
/// surviving indices is always ascending-stable (filters never reorder).
class SelectionVector {
 public:
  /// Resets to the identity selection [0, n).
  void reset_identity(std::size_t n) {
    indices_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      indices_[i] = static_cast<std::uint32_t>(i);
    }
  }

  void clear() { indices_.clear(); }
  void push_back(std::uint32_t row) { indices_.push_back(row); }

  /// Keeps only the rows for which `keep(row)` is true, compacting in place
  /// (stable). Returns the surviving count.
  template <typename Pred>
  std::size_t filter(Pred&& keep) {
    std::size_t out = 0;
    for (const std::uint32_t row : indices_) {
      if (keep(row)) indices_[out++] = row;
    }
    indices_.resize(out);
    return out;
  }

  [[nodiscard]] std::size_t size() const { return indices_.size(); }
  [[nodiscard]] bool empty() const { return indices_.empty(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t i) const {
    return indices_[i];
  }
  [[nodiscard]] auto begin() const { return indices_.begin(); }
  [[nodiscard]] auto end() const { return indices_.end(); }

 private:
  std::vector<std::uint32_t> indices_;
};

/// Row-major Value matrix with a fixed stride: row r occupies
/// [r * stride, (r + 1) * stride) of one flat vector. Rows are appended,
/// never erased; dead rows are simply dropped from the selection vector.
class ValueMatrix {
 public:
  /// Drops all rows and fixes the row width. Storage is retained, so a
  /// reused scratch matrix stops allocating once warmed up.
  void reset(std::size_t stride) {
    stride_ = stride;
    values_.clear();
  }

  /// Appends a default-constructed row; returns its index.
  std::size_t add_row() {
    values_.resize(values_.size() + stride_);
    return rows() - 1;
  }

  /// Appends a copy of row `src` (of this same matrix); returns the new
  /// row's index. Safe across the reallocation copying may trigger.
  std::size_t add_row_copy(std::size_t src) {
    assert(src < rows());
    // Self-insert from a range inside the vector is UB across reallocation;
    // reserve first so the source stays valid.
    values_.reserve(values_.size() + stride_);
    const auto begin = values_.begin() + static_cast<std::ptrdiff_t>(src * stride_);
    values_.insert(values_.end(), begin,
                   begin + static_cast<std::ptrdiff_t>(stride_));
    return rows() - 1;
  }

  [[nodiscard]] std::size_t rows() const {
    return stride_ == 0 ? 0 : values_.size() / stride_;
  }
  [[nodiscard]] std::size_t stride() const { return stride_; }

  [[nodiscard]] Value* row(std::size_t r) { return values_.data() + r * stride_; }
  [[nodiscard]] const Value* row(std::size_t r) const {
    return values_.data() + r * stride_;
  }
  [[nodiscard]] Value& at(std::size_t r, std::size_t c) {
    assert(c < stride_);
    return values_[r * stride_ + c];
  }
  [[nodiscard]] const Value& at(std::size_t r, std::size_t c) const {
    assert(c < stride_);
    return values_[r * stride_ + c];
  }

 private:
  std::size_t stride_ = 0;
  std::vector<Value> values_;
};

}  // namespace dp::store
