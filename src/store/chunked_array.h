// Append-only chunked storage with stable addresses and lock-free reads.
//
// The interning pools (store.h) grow concurrently while earlier entries are
// read from other threads. A std::vector would reallocate under the readers
// and a std::deque's internal map is not safe to grow concurrently, so the
// pools store their columns in fixed-size chunks behind an atomic chunk
// table: a chunk pointer is published once with release ordering and never
// moves or shrinks afterwards, which makes operator[] safe without a lock
// for any index a reader legitimately learned about (a ref handed out by
// intern() always travels to other threads through some synchronizing
// channel, which carries the happens-before edge for the slot's contents).
//
// Writers must be serialized externally (the owning pool's mutex).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

namespace dp::store_detail {

template <typename T>
class ChunkedArray {
 public:
  /// `chunk_bits` entries-per-chunk exponent; capacity is
  /// `max_chunks << chunk_bits` entries.
  explicit ChunkedArray(std::size_t chunk_bits = 12,
                        std::size_t max_chunks = std::size_t{1} << 16)
      : chunk_bits_(chunk_bits),
        chunk_mask_((std::size_t{1} << chunk_bits) - 1),
        max_chunks_(max_chunks),
        chunks_(new std::atomic<T*>[max_chunks]) {
    for (std::size_t i = 0; i < max_chunks_; ++i) {
      chunks_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~ChunkedArray() {
    for (std::size_t i = 0; i < max_chunks_; ++i) {
      delete[] chunks_[i].load(std::memory_order_relaxed);
    }
  }

  ChunkedArray(const ChunkedArray&) = delete;
  ChunkedArray& operator=(const ChunkedArray&) = delete;

  /// Appends `value`; returns its index. Caller holds the pool's write lock.
  std::size_t push_back(T value) {
    const std::size_t index = emplace_default();
    chunk_of(index)[index & chunk_mask_] = std::move(value);
    publish(index + 1);
    return index;
  }

  /// Appends a default-constructed slot (for non-movable element types such
  /// as std::atomic<T*>; the caller sets it through mutable_at).
  std::size_t emplace_default() {
    const std::size_t index = size_.load(std::memory_order_relaxed);
    const std::size_t chunk = index >> chunk_bits_;
    if (chunk >= max_chunks_) {
      throw std::length_error("ChunkedArray: capacity exhausted");
    }
    if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
      chunks_[chunk].store(new T[chunk_mask_ + 1](),
                           std::memory_order_release);
      chunks_allocated_.fetch_add(1, std::memory_order_relaxed);
    }
    return index;
  }

  /// Makes index `count - 1` (and everything before it) visible to readers.
  /// push_back publishes automatically; emplace_default callers publish once
  /// the slot's columns are all written.
  void publish(std::size_t count) {
    size_.store(count, std::memory_order_release);
  }

  const T& operator[](std::size_t index) const {
    return chunks_[index >> chunk_bits_].load(
        std::memory_order_acquire)[index & chunk_mask_];
  }

  T& mutable_at(std::size_t index) {
    return chunk_of(index)[index & chunk_mask_];
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Bytes of chunk storage currently allocated (excludes the chunk table).
  [[nodiscard]] std::size_t allocated_bytes() const {
    return chunks_allocated_.load(std::memory_order_relaxed) *
           (chunk_mask_ + 1) * sizeof(T);
  }

 private:
  T* chunk_of(std::size_t index) {
    return chunks_[index >> chunk_bits_].load(std::memory_order_relaxed);
  }

  const std::size_t chunk_bits_;
  const std::size_t chunk_mask_;
  const std::size_t max_chunks_;
  std::unique_ptr<std::atomic<T*>[]> chunks_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> chunks_allocated_{0};
};

}  // namespace dp::store_detail
