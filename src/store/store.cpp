#include "store/store.h"

#include <cassert>
#include <mutex>

namespace dp {

namespace {

/// Heap bytes behind a value beyond its inline footprint (string storage).
std::uint64_t value_heap_bytes(const Value& v) {
  if (!v.is_string()) return 0;
  const std::string& s = v.as_string();
  // Small strings live inline in libstdc++/libc++; only counted when the
  // buffer is actually heap-allocated.
  return s.capacity() + 1 > sizeof(std::string) ? s.capacity() + 1 : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// ValuePool

ValueRef ValuePool::find_in_chain(std::uint64_t hash, const Value& v) const {
  auto it = buckets_.find(hash);
  if (it == buckets_.end()) return kNoValueRef;
  for (ValueRef r = it->second; r != kNoValueRef; r = next_[r]) {
    if (values_[r] == v) return r;
  }
  return kNoValueRef;
}

ValueRef ValuePool::intern(const Value& v) {
  const std::uint64_t hash = hash_of(v);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const ValueRef r = find_in_chain(hash, v);
    if (r != kNoValueRef) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Re-probe: another thread may have interned v between the locks.
  const ValueRef existing = find_in_chain(hash, v);
  if (existing != kNoValueRef) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return existing;
  }
  const auto r = static_cast<ValueRef>(values_.push_back(v));
  auto [it, inserted] = buckets_.emplace(hash, r);
  next_.push_back(inserted ? kNoValueRef : it->second);  // chain old head
  it->second = r;
  string_bytes_ += value_heap_bytes(values_[r]);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

ValueRef ValuePool::find(const Value& v) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return find_in_chain(hash_of(v), v);
}

ValuePool::Stats ValuePool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  s.values = values_.size();
  s.bytes = values_.allocated_bytes() + next_.allocated_bytes() +
            string_bytes_ +
            buckets_.size() * (sizeof(std::uint64_t) + sizeof(ValueRef) +
                               2 * sizeof(void*));
  return s;
}

// ---------------------------------------------------------------------------
// NamePool

NameRef NamePool::intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto r = static_cast<NameRef>(names_.push_back(std::string(name)));
  index_.emplace(std::string_view(names_[r]), r);
  return r;
}

NameRef NamePool::find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(name);
  return it == index_.end() ? kNoName : it->second;
}

// ---------------------------------------------------------------------------
// TupleStore

namespace {
/// Scratch for a tuple's value refs during intern/find; thread-local so the
/// hot path never allocates once warmed up.
thread_local std::vector<ValueRef> t_scratch_refs;
}  // namespace

TupleStore::~TupleStore() {
  const std::size_t n = canonical_.size();
  for (std::size_t i = 0; i < n; ++i) {
    delete canonical_[i].load(std::memory_order_relaxed);
  }
}

TupleRef TupleStore::find_in_chain(std::uint64_t hash, NameRef table,
                                   const ValueRef* refs, std::size_t n) const {
  auto it = buckets_.find(hash);
  if (it == buckets_.end()) return kNoTupleRef;
  for (TupleRef r = it->second; r != kNoTupleRef; r = next_[r]) {
    if (table_[r] != table || arity_[r] != n) continue;
    const std::uint32_t begin = begin_[r];
    bool equal = true;
    for (std::size_t i = 0; i < n; ++i) {
      // Value refs are themselves interned, so ref equality is value
      // equality -- no value comparisons on the tuple probe path.
      if (refs_[begin + i] != refs[i]) {
        equal = false;
        break;
      }
    }
    if (equal) return r;
  }
  return kNoTupleRef;
}

TupleRef TupleStore::insert_locked(std::uint64_t hash, NameRef table,
                                   const ValueRef* refs, std::size_t n,
                                   [[maybe_unused]] const Tuple& t) {
  const auto begin = static_cast<std::uint32_t>(refs_.size());
  for (std::size_t i = 0; i < n; ++i) refs_.push_back(refs[i]);
  const auto r = static_cast<TupleRef>(table_.push_back(table));
  begin_.push_back(begin);
  arity_.push_back(static_cast<std::uint16_t>(n));
  canonical_.publish(canonical_.emplace_default() + 1);
  auto [it, inserted] = buckets_.emplace(hash, r);
  next_.push_back(inserted ? kNoTupleRef : it->second);
  it->second = r;
  misses_.fetch_add(1, std::memory_order_relaxed);
#ifndef NDEBUG
  // The no-second-copy invariant: the record just written must round-trip to
  // a tuple structurally equal to the input, and re-interning must find it
  // (i.e. the store never ends up with two records for one tuple).
  assert(find_in_chain(hash, table, refs, n) == r &&
         "TupleStore: duplicate record for one tuple");
  assert(table_name(r) == t.table() && arity(r) == t.arity());
  for (std::size_t i = 0; i < t.arity(); ++i) {
    assert(value(r, i) == t.at(i) &&
           "TupleStore: interned record does not match input tuple");
  }
#endif
  return r;
}

TupleRef TupleStore::intern(const Tuple& t) {
  std::vector<ValueRef>& refs = t_scratch_refs;
  refs.clear();
  refs.reserve(t.arity());
  for (const Value& v : t.values()) refs.push_back(pool_.intern(v));
  const NameRef table = names_.intern(t.table());
  const std::uint64_t hash = hash_of(t);

  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const TupleRef r = find_in_chain(hash, table, refs.data(), refs.size());
    if (r != kNoTupleRef) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const TupleRef existing =
      find_in_chain(hash, table, refs.data(), refs.size());
  if (existing != kNoTupleRef) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return existing;
  }
  return insert_locked(hash, table, refs.data(), refs.size(), t);
}

void TupleStore::intern_batch(const Tuple* const* tuples, std::size_t n,
                              std::vector<TupleRef>& out) {
  out.assign(n, kNoTupleRef);
  if (n == 0) return;

  // Per-batch scratch: one flat ValueRef arena plus per-tuple offsets, so the
  // prepare pass allocates nothing once the thread is warmed up.
  thread_local std::vector<ValueRef> t_arena;
  thread_local std::vector<std::uint32_t> t_begins;
  thread_local std::vector<std::uint64_t> t_hashes;
  thread_local std::vector<NameRef> t_tables;
  t_arena.clear();
  t_begins.clear();
  t_hashes.clear();
  t_tables.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Tuple& t = *tuples[i];
    t_begins.push_back(static_cast<std::uint32_t>(t_arena.size()));
    for (const Value& v : t.values()) t_arena.push_back(pool_.intern(v));
    t_tables.push_back(names_.intern(t.table()));
    t_hashes.push_back(hash_of(t));
  }
  t_begins.push_back(static_cast<std::uint32_t>(t_arena.size()));

  // Pass 1 (shared lock): resolve every tuple already in the store. In steady
  // state most of a batch hits here and the writer lock is never taken.
  std::uint64_t hits = 0;
  bool any_miss = false;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      const TupleRef r =
          find_in_chain(t_hashes[i], t_tables[i], t_arena.data() + t_begins[i],
                        t_begins[i + 1] - t_begins[i]);
      if (r != kNoTupleRef) {
        out[i] = r;
        ++hits;
      } else {
        any_miss = true;
      }
    }
  }
  if (any_miss) {
    // Pass 2 (unique lock): insert the misses. The re-probe both closes the
    // race with concurrent interners and collapses duplicates within the
    // batch -- a tuple inserted at position i is found when it recurs at j>i.
    std::unique_lock<std::shared_mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] != kNoTupleRef) continue;
      const ValueRef* refs = t_arena.data() + t_begins[i];
      const std::size_t arity = t_begins[i + 1] - t_begins[i];
      const TupleRef existing =
          find_in_chain(t_hashes[i], t_tables[i], refs, arity);
      if (existing != kNoTupleRef) {
        out[i] = existing;
        ++hits;
        continue;
      }
      out[i] =
          insert_locked(t_hashes[i], t_tables[i], refs, arity, *tuples[i]);
    }
  }
  if (hits != 0) hits_.fetch_add(hits, std::memory_order_relaxed);
}

TupleRef TupleStore::find(const Tuple& t) const {
  std::vector<ValueRef>& refs = t_scratch_refs;
  refs.clear();
  refs.reserve(t.arity());
  for (const Value& v : t.values()) {
    const ValueRef vr = pool_.find(v);
    if (vr == kNoValueRef) return kNoTupleRef;  // unseen value => unseen tuple
    refs.push_back(vr);
  }
  const NameRef table = names_.find(t.table());
  if (table == kNoName) return kNoTupleRef;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return find_in_chain(hash_of(t), table, refs.data(), refs.size());
}

const Tuple& TupleStore::resolve(TupleRef ref) const {
  const Tuple* cached = canonical_[ref].load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;

  // First resolve of this record: materialize one canonical copy under the
  // store lock (double-checked so concurrent resolvers share it).
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::atomic<const Tuple*>& slot = canonical_.mutable_at(ref);
  cached = slot.load(std::memory_order_relaxed);
  if (cached != nullptr) return *cached;

  std::vector<Value> values;
  const std::size_t n = arity_[ref];
  values.reserve(n);
  const std::uint32_t begin = begin_[ref];
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(pool_.value(refs_[begin + i]));
  }
  auto* fresh = new Tuple(names_.name(table_[ref]), std::move(values));
  slot.store(fresh, std::memory_order_release);
  resolved_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bytes = sizeof(Tuple) + fresh->table().capacity() +
                        fresh->arity() * sizeof(Value);
  for (const Value& v : fresh->values()) bytes += value_heap_bytes(v);
  resolved_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return *fresh;
}

bool TupleStore::less(TupleRef a, TupleRef b) const {
  if (a == b) return false;
  // Mirrors Tuple::operator<: table name, then values lexicographically.
  const std::string& ta = table_name(a);
  const std::string& tb = table_name(b);
  if (ta != tb) return ta < tb;
  const std::size_t na = arity(a);
  const std::size_t nb = arity(b);
  const std::size_t n = na < nb ? na : nb;
  for (std::size_t i = 0; i < n; ++i) {
    const ValueRef ra = value_ref(a, i);
    const ValueRef rb = value_ref(b, i);
    if (ra == rb) continue;  // interned: same ref <=> equal value
    const Value& va = pool_.value(ra);
    const Value& vb = pool_.value(rb);
    if (va < vb) return true;
    if (vb < va) return false;
  }
  return na < nb;
}

TupleStore::Stats TupleStore::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.resolved = resolved_.load(std::memory_order_relaxed);
  const ValuePool::Stats vs = pool_.stats();
  s.values = vs.values;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  s.tuples = table_.size();
  s.bytes = vs.bytes + table_.allocated_bytes() + begin_.allocated_bytes() +
            arity_.allocated_bytes() + next_.allocated_bytes() +
            refs_.allocated_bytes() + canonical_.allocated_bytes() +
            resolved_bytes_.load(std::memory_order_relaxed) +
            buckets_.size() * (sizeof(std::uint64_t) + sizeof(TupleRef) +
                               2 * sizeof(void*));
  return s;
}

void TupleStore::publish_metrics(obs::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.gauge("dp.store.values").set(static_cast<std::int64_t>(s.values));
  registry.gauge("dp.store.tuples").set(static_cast<std::int64_t>(s.tuples));
  registry.gauge("dp.store.names")
      .set(static_cast<std::int64_t>(names_.size()));
  registry.gauge("dp.store.resolved")
      .set(static_cast<std::int64_t>(s.resolved));
  registry.gauge("dp.store.bytes").set(static_cast<std::int64_t>(s.bytes));
  registry.gauge("dp.store.hit_rate_ppm")
      .set(static_cast<std::int64_t>(s.hit_rate() * 1e6));
  // Counters are cumulative; publish the delta since the last call so
  // repeated publishes don't double-count.
  static_assert(sizeof(std::uint64_t) == 8);
  const std::uint64_t hits_prev =
      published_hits_.exchange(s.hits, std::memory_order_relaxed);
  const std::uint64_t misses_prev =
      published_misses_.exchange(s.misses, std::memory_order_relaxed);
  if (s.hits > hits_prev) {
    registry.counter("dp.store.intern_hits").inc(s.hits - hits_prev);
  }
  if (s.misses > misses_prev) {
    registry.counter("dp.store.intern_misses").inc(s.misses - misses_prev);
  }
}

TupleStore& global_store() {
  static TupleStore* store = new TupleStore();  // never destroyed: refs held
                                                // at exit must stay valid
  return *store;
}

}  // namespace dp
