// Process-wide interned tuple storage (the storage layer under the
// provenance graph, the event log, and the serving tier).
//
// Every layer of the system used to pass and keep full Tuple copies: each
// provenance vertex carried one, the exist-index keyed a second, the event
// log a third, and warm sessions kept all of them resident. Provenance at
// scale lives or dies on structure-shared storage ("Provenance for
// Large-scale Datalog", Zhao, Subotic, Scholz) -- a tuple that appears in
// 10k derivations should be stored once and referenced 10k times. This
// module provides that:
//
//   * ValuePool   hash-conses Values into immutable, arena-backed records
//                 addressed by a 32-bit ValueRef.
//   * NamePool    interns table/rule-name strings (32-bit ids).
//   * TupleStore  hash-conses Tuples into columnar records -- a table-name
//                 id plus a span of ValueRefs in a flat arena -- addressed
//                 by a 32-bit TupleRef. `resolve()` lazily materializes (and
//                 caches) one canonical Tuple per record for the code paths
//                 that still want value semantics; everything else reads the
//                 columns directly.
//
// Interned records are immutable and live for the lifetime of the store
// (the process, for `global_store()`), which is exactly what lets DiffProv
// compare proof trees across independent replays by reference: a TupleRef
// minted during the bad run is still valid while diffing against the good
// run, and ref equality coincides with structural tuple equality.
//
// Thread model: interning is serialized on a shared_mutex; reads of interned
// records (resolve, value access, name lookup) are lock-free via the
// chunked-arena storage (chunked_array.h). Multiple replay sessions -- the
// service's worker pool -- intern into one global store concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ndlog/tuple.h"
#include "ndlog/value.h"
#include "obs/metrics.h"
#include "store/chunked_array.h"

namespace dp {

/// Handle of an interned Value. Equal refs <=> equal values (per pool).
using ValueRef = std::uint32_t;
inline constexpr ValueRef kNoValueRef = static_cast<ValueRef>(-1);

/// Handle of an interned Tuple. Equal refs <=> structurally equal tuples
/// (per store).
using TupleRef = std::uint32_t;
inline constexpr TupleRef kNoTupleRef = static_cast<TupleRef>(-1);

/// Handle of an interned name (table or rule). kNoName renders as "".
using NameRef = std::uint32_t;
inline constexpr NameRef kNoName = static_cast<NameRef>(-1);

/// Deduplicating value storage. Each distinct Value is stored once; interning
/// an equal value again returns the original ref (hash-consing with full
/// equality checks on 64-bit hash collisions).
class ValuePool {
 public:
  /// Structural hash used for bucketing. Injectable so tests can force every
  /// value into one collision chain; nullptr means Value::hash.
  using HashFn = std::uint64_t (*)(const Value&);

  explicit ValuePool(HashFn hash = nullptr) : hash_fn_(hash) {}

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Returns the ref of `v`, inserting it if unseen.
  ValueRef intern(const Value& v);

  /// Ref of `v` if it was ever interned, else kNoValueRef. Never inserts.
  [[nodiscard]] ValueRef find(const Value& v) const;

  /// The interned value. Lock-free; `ref` must have come from this pool.
  [[nodiscard]] const Value& value(ValueRef ref) const { return values_[ref]; }

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  struct Stats {
    std::uint64_t values = 0;
    std::uint64_t hits = 0;    // intern() calls that found an existing record
    std::uint64_t misses = 0;  // intern() calls that inserted
    std::uint64_t bytes = 0;   // arena + string heap estimate
  };
  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] std::uint64_t hash_of(const Value& v) const {
    return hash_fn_ != nullptr ? hash_fn_(v) : v.hash();
  }
  [[nodiscard]] ValueRef find_in_chain(std::uint64_t hash,
                                       const Value& v) const;

  HashFn hash_fn_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::uint64_t, ValueRef> buckets_;  // hash -> chain head
  store_detail::ChunkedArray<Value> values_;
  store_detail::ChunkedArray<ValueRef> next_;  // same-hash collision chain
  std::uint64_t string_bytes_ = 0;             // heap behind string values
  mutable std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Interned strings for table and rule names (few dozen per program; shared
/// so vertices and columnar tuple records store 4-byte ids).
class NamePool {
 public:
  NamePool() = default;
  NamePool(const NamePool&) = delete;
  NamePool& operator=(const NamePool&) = delete;

  NameRef intern(std::string_view name);
  [[nodiscard]] NameRef find(std::string_view name) const;

  /// Lock-free; kNoName returns the empty string.
  [[nodiscard]] const std::string& name(NameRef ref) const {
    static const std::string kEmpty;
    return ref == kNoName ? kEmpty : names_[ref];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  mutable std::shared_mutex mutex_;
  // Keys view into the interned strings, whose heap buffers never move.
  std::unordered_map<std::string_view, NameRef> index_;
  store_detail::ChunkedArray<std::string> names_;
};

/// Hash-consed, columnar tuple storage. A record is a table-name id plus a
/// contiguous span of ValueRefs in a flat arena; the struct-of-arrays layout
/// keeps a record at ~10 + 4*arity bytes regardless of how many vertices,
/// log entries, or proof-tree nodes reference it.
class TupleStore {
 public:
  using TupleHashFn = std::uint64_t (*)(const Tuple&);

  /// Hash functions are injectable for collision testing; nullptr means the
  /// structural Value::hash / Tuple::hash.
  explicit TupleStore(ValuePool::HashFn value_hash = nullptr,
                      TupleHashFn tuple_hash = nullptr)
      : tuple_hash_(tuple_hash), pool_(value_hash) {}

  TupleStore(const TupleStore&) = delete;
  TupleStore& operator=(const TupleStore&) = delete;
  ~TupleStore();

  /// Returns the ref of `t`, inserting it if unseen. An equal tuple always
  /// returns the same ref, so ref comparison is tuple equality.
  TupleRef intern(const Tuple& t);

  /// Interns `n` tuples in one pass, writing their refs to `out` (resized to
  /// `n`, out[i] is the ref of *tuples[i]). Amortizes the locking: one
  /// shared-lock sweep resolves the tuples already interned, then a single
  /// unique-lock pass inserts the misses (re-probing each, which also
  /// deduplicates equal tuples *within* the batch). Equivalent to calling
  /// intern() on each tuple in order -- same refs, same hit/miss accounting.
  void intern_batch(const Tuple* const* tuples, std::size_t n,
                    std::vector<TupleRef>& out);

  /// Ref of `t` if interned, else kNoTupleRef. Never inserts (lookups of
  /// never-recorded tuples must not grow the store).
  [[nodiscard]] TupleRef find(const Tuple& t) const;

  /// The canonical materialized Tuple behind `ref`. Built lazily on first
  /// resolve and cached, so every caller shares one copy; the reference is
  /// stable for the lifetime of the store.
  [[nodiscard]] const Tuple& resolve(TupleRef ref) const;

  // --- columnar access (no materialization) ---
  [[nodiscard]] NameRef table_id(TupleRef ref) const { return table_[ref]; }
  [[nodiscard]] const std::string& table_name(TupleRef ref) const {
    return names_.name(table_[ref]);
  }
  [[nodiscard]] std::size_t arity(TupleRef ref) const { return arity_[ref]; }
  [[nodiscard]] const Value& value(TupleRef ref, std::size_t i) const {
    return pool_.value(refs_[begin_[ref] + i]);
  }
  [[nodiscard]] ValueRef value_ref(TupleRef ref, std::size_t i) const {
    return refs_[begin_[ref] + i];
  }
  /// The location specifier (field 0), for sharding and node filters.
  [[nodiscard]] const NodeName& location(TupleRef ref) const {
    return value(ref, 0).as_string();
  }

  /// Structural order identical to Tuple::operator< (table name, then values
  /// lexicographically), computed on the columns.
  [[nodiscard]] bool less(TupleRef a, TupleRef b) const;

  /// Rendering identical to Tuple::to_string().
  [[nodiscard]] std::string to_string(TupleRef ref) const {
    return resolve(ref).to_string();
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  [[nodiscard]] ValuePool& values() { return pool_; }
  [[nodiscard]] const ValuePool& values() const { return pool_; }
  [[nodiscard]] NamePool& names() { return names_; }
  [[nodiscard]] const NamePool& names() const { return names_; }

  struct Stats {
    std::uint64_t tuples = 0;
    std::uint64_t values = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t resolved = 0;  // canonical tuples materialized
    std::uint64_t bytes = 0;     // columns + value pool + canonical cache
    [[nodiscard]] double hit_rate() const {
      return hits + misses == 0
                 ? 0.0
                 : static_cast<double>(hits) /
                       static_cast<double>(hits + misses);
    }
  };
  [[nodiscard]] Stats stats() const;

  /// Publishes dp.store.* gauges/counters (interned values/tuples, resident
  /// bytes, intern hit rate in ppm) into `registry`. Gauges are absolute;
  /// safe to call repeatedly from any thread.
  void publish_metrics(obs::MetricsRegistry& registry) const;

 private:
  [[nodiscard]] std::uint64_t hash_of(const Tuple& t) const {
    return tuple_hash_ != nullptr ? tuple_hash_(t) : t.hash();
  }
  [[nodiscard]] TupleRef find_in_chain(std::uint64_t hash, NameRef table,
                                       const ValueRef* refs,
                                       std::size_t n) const;
  /// Appends a new record (columns, bucket chain, canonical slot). Caller
  /// holds the unique lock and has verified the tuple is absent.
  TupleRef insert_locked(std::uint64_t hash, NameRef table,
                         const ValueRef* refs, std::size_t n, const Tuple& t);

  TupleHashFn tuple_hash_;
  ValuePool pool_;
  NamePool names_;

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::uint64_t, TupleRef> buckets_;  // hash -> chain head

  // Columnar record storage (struct of arrays).
  store_detail::ChunkedArray<NameRef> table_;
  store_detail::ChunkedArray<std::uint32_t> begin_;  // offset into refs_
  store_detail::ChunkedArray<std::uint16_t> arity_;
  store_detail::ChunkedArray<TupleRef> next_;  // same-hash collision chain
  // Flat ValueRef arena; record `r` owns refs_[begin_[r] .. +arity_[r]).
  store_detail::ChunkedArray<ValueRef> refs_;
  // Lazily materialized canonical tuples (resolve()).
  mutable store_detail::ChunkedArray<std::atomic<const Tuple*>> canonical_;
  mutable std::atomic<std::uint64_t> resolved_{0};
  mutable std::atomic<std::uint64_t> resolved_bytes_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  // Counter values as of the last publish_metrics (delta publishing).
  mutable std::atomic<std::uint64_t> published_hits_{0};
  mutable std::atomic<std::uint64_t> published_misses_{0};
};

/// The process-wide store every layer records into. Refs from different
/// TupleStore instances are not interchangeable; the runtime, provenance,
/// replay, and service layers all use this one.
TupleStore& global_store();

/// Shorthands for the global store.
inline TupleRef intern_tuple(const Tuple& t) {
  return global_store().intern(t);
}
inline const Tuple& resolve_tuple(TupleRef ref) {
  return global_store().resolve(ref);
}
inline NameRef intern_name(std::string_view name) {
  return global_store().names().intern(name);
}
inline const std::string& resolve_name(NameRef ref) {
  return global_store().names().name(ref);
}

}  // namespace dp
