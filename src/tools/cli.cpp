#include "tools/cli.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "ndlog/parser.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "service/diagnose.h"
#include "service/problem.h"

namespace dp::cli {

namespace {

struct Options {
  std::string scenario;
  std::string program_path;
  std::string log_path;
  std::optional<Tuple> good_event;
  std::optional<Tuple> bad_event;
  bool auto_reference = false;
  bool minimize = false;
  std::string show_tree;  // "good" | "bad" | ""
  std::string dot_path;
  bool list_scenarios = false;
  std::string dump_log;  // --dump-log NAME: print a scenario's event log
  Topology topology;
  std::string trace_path;    // --trace-out: Chrome trace-event JSON
  std::string metrics_path;  // --metrics-out: metrics registry JSON
  std::string profile_path;  // --profile-out: collapsed stacks (flamegraph)
  bool stats = false;        // --stats: human-readable metrics table
  std::string exec;          // --exec: fullscan | row | batch (default batch)
};

constexpr const char* kUsage =
    "usage: diffprov_cli (--scenario NAME | --program FILE --log FILE)\n"
    "                    --bad 'EVENT' (--good 'EVENT' | --auto-reference)\n"
    "                    [--minimize] [--show-tree good|bad] [--dot FILE]\n"
    "                    [--link A B DELAY]... [--list-scenarios]\n"
    "                    [--dump-log NAME]\n"
    "                    [--trace-out FILE] [--metrics-out FILE] [--stats]\n"
    "                    [--profile-out FILE] [--exec fullscan|row|batch]\n"
    "\n"
    "execution variants (outputs are byte-identical; CI diffs them):\n"
    "  --exec fullscan     reference evaluator, no join plans\n"
    "  --exec row          compiled join plans, tuple-at-a-time\n"
    "  --exec batch        compiled join plans, batched deltas (default)\n"
    "\n"
    "observability:\n"
    "  --trace-out FILE    write a Chrome trace-event JSON of the diagnosis\n"
    "                      (open in ui.perfetto.dev or chrome://tracing)\n"
    "  --metrics-out FILE  write the dp.* metrics registry as JSON\n"
    "  --profile-out FILE  sample the diagnosis with the scope profiler and\n"
    "                      write weighted collapsed stacks (pipe into\n"
    "                      flamegraph.pl or load in speedscope)\n"
    "  --stats             print the metrics registry as a table\n"
    "  --dump-log NAME     print a builtin scenario's event log as text\n"
    "                      (streamable into diffprovd via --ingest)\n"
    "\n"
    "the same queries can be served warm by the diffprovd daemon; see\n"
    "diffprovd --help and diffprov_client --help\n";

std::optional<std::string> read_file(const std::string& path,
                                     std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  Options options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        err << arg << " requires " << what << "\n" << kUsage;
        return std::nullopt;
      }
      return args[++i];
    };
    try {
      if (arg == "--scenario") {
        auto v = next("a name");
        if (!v) return 2;
        options.scenario = *v;
      } else if (arg == "--program") {
        auto v = next("a path");
        if (!v) return 2;
        options.program_path = *v;
      } else if (arg == "--log") {
        auto v = next("a path");
        if (!v) return 2;
        options.log_path = *v;
      } else if (arg == "--good") {
        auto v = next("an event tuple");
        if (!v) return 2;
        options.good_event = parse_tuple(*v);
      } else if (arg == "--bad") {
        auto v = next("an event tuple");
        if (!v) return 2;
        options.bad_event = parse_tuple(*v);
      } else if (arg == "--auto-reference") {
        options.auto_reference = true;
      } else if (arg == "--minimize") {
        options.minimize = true;
      } else if (arg == "--show-tree") {
        auto v = next("good|bad");
        if (!v) return 2;
        options.show_tree = *v;
      } else if (arg == "--dot") {
        auto v = next("a path");
        if (!v) return 2;
        options.dot_path = *v;
      } else if (arg == "--link") {
        if (i + 3 >= args.size()) {
          err << "--link requires: A B DELAY\n";
          return 2;
        }
        const std::string a = args[++i];
        const std::string b = args[++i];
        options.topology.connect(a, b, std::stoll(args[++i]));
      } else if (arg == "--list-scenarios") {
        options.list_scenarios = true;
      } else if (arg == "--dump-log") {
        auto v = next("a scenario name");
        if (!v) return 2;
        options.dump_log = *v;
      } else if (arg == "--trace-out") {
        auto v = next("a path");
        if (!v) return 2;
        options.trace_path = *v;
      } else if (arg == "--metrics-out") {
        auto v = next("a path");
        if (!v) return 2;
        options.metrics_path = *v;
      } else if (arg == "--profile-out") {
        auto v = next("a path");
        if (!v) return 2;
        options.profile_path = *v;
      } else if (arg == "--stats") {
        options.stats = true;
      } else if (arg == "--exec") {
        auto v = next("fullscan|row|batch");
        if (!v) return 2;
        if (*v != "fullscan" && *v != "row" && *v != "batch") {
          err << "--exec must be fullscan, row, or batch\n";
          return 2;
        }
        options.exec = *v;
      } else if (arg == "--help" || arg == "-h") {
        out << kUsage;
        return 0;
      } else {
        err << "unknown option '" << arg << "'\n" << kUsage;
        return 2;
      }
    } catch (const std::exception& e) {
      err << "bad argument for " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }
  if (options.list_scenarios) {
    service::list_scenarios(out);
    return 0;
  }
  if (!options.dump_log.empty()) {
    const auto problem = service::builtin_scenario(options.dump_log, err);
    if (!problem) return 2;
    // Arrival (time) order, not authoring order: scenario logs group records
    // by kind, but a live tap delivers them time-sorted and the ingest
    // stream's append contract is watermark-monotone. The stable sort keeps
    // same-time records in log order, which is exactly the (time, seq) order
    // batch replay processes them in -- so streaming this output reproduces
    // the scenario byte for byte.
    std::vector<LogRecord> records = problem->log.records();
    std::stable_sort(records.begin(), records.end(),
                     [](const LogRecord& a, const LogRecord& b) {
                       return a.time < b.time;
                     });
    EventLog sorted;
    for (const LogRecord& record : records) sorted.append(record);
    out << sorted.to_text();
    return 0;
  }

  // Assemble the problem (shared with the diffprovd service, so the two
  // front-ends agree on the scenario catalogue and file formats).
  std::optional<service::Problem> problem;
  if (!options.scenario.empty()) {
    problem = service::builtin_scenario(options.scenario, err);
    if (!problem) return 2;
  } else if (!options.program_path.empty() && !options.log_path.empty()) {
    const auto program_text = read_file(options.program_path, err);
    const auto log_text = read_file(options.log_path, err);
    if (!program_text || !log_text) return 2;
    try {
      problem =
          service::parse_problem(*program_text, *log_text, options.topology);
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return 2;
    }
  } else {
    err << kUsage;
    return 2;
  }
  if (options.good_event) problem->good_event = options.good_event;
  if (options.bad_event) problem->bad_event = options.bad_event;
  // --auto-reference overrides a built-in scenario's default reference
  // (an explicit --good still wins).
  if (options.auto_reference && !options.good_event) {
    problem->good_event.reset();
  }
  if (!problem->bad_event) {
    err << "no event of interest: pass --bad 'EVENT'\n";
    return 2;
  }
  if (!problem->good_event && !options.auto_reference) {
    err << "no reference: pass --good 'EVENT' or --auto-reference\n";
    return 2;
  }

  // Observability: spans flow into the default tracer once it is enabled;
  // engines and the recorder publish into the default registry so one dump
  // covers the whole pipeline.
  if (!options.trace_path.empty()) obs::default_tracer().set_enabled(true);
  if (!options.profile_path.empty()) {
    // The sampler snapshots this thread's scope stack while the diagnosis
    // runs; diagnosis *output* is unchanged (the profiler only observes).
    obs::ScopeProfiler::instance().start_sampler(std::chrono::milliseconds(2));
  }
  ReplayOptions replay_options;
  replay_options.engine_config.metrics = &obs::default_registry();
  if (options.exec == "fullscan") {
    replay_options.engine_config.use_join_plans = false;
    replay_options.engine_config.use_batch_exec = false;
  } else if (options.exec == "row") {
    replay_options.engine_config.use_join_plans = true;
    replay_options.engine_config.use_batch_exec = false;
  } else if (options.exec == "batch") {
    replay_options.engine_config.use_join_plans = true;
    replay_options.engine_config.use_batch_exec = true;
  }

  service::DiagnoseSpec spec;
  spec.good_event = problem->good_event;
  spec.bad_event = *problem->bad_event;
  spec.minimize = options.minimize;
  spec.show_tree = options.show_tree;
  spec.want_dot = !options.dot_path.empty();

  const service::DiagnoseOutcome outcome =
      service::diagnose_problem(*problem, spec, replay_options);
  if (!options.profile_path.empty()) {
    obs::ScopeProfiler::instance().stop_sampler();
  }

  out << outcome.pre;
  if (!options.dot_path.empty() && !outcome.dot.empty()) {
    std::ofstream dot(options.dot_path);
    dot << outcome.dot;
    out << "wrote " << options.dot_path << "\n";
  }
  if (!outcome.err.empty()) {
    err << outcome.err;
    return outcome.exit_code;
  }
  out << outcome.out;

  if (!options.trace_path.empty()) {
    std::ofstream trace(options.trace_path, std::ios::binary);
    if (!trace) {
      err << "cannot write " << options.trace_path << "\n";
      return 2;
    }
    trace << obs::default_tracer().to_chrome_json();
    out << "wrote trace (" << obs::default_tracer().size() << " events) to "
        << options.trace_path << "\n";
  }
  if (!options.metrics_path.empty()) {
    std::ofstream metrics(options.metrics_path, std::ios::binary);
    if (!metrics) {
      err << "cannot write " << options.metrics_path << "\n";
      return 2;
    }
    metrics << obs::default_registry().to_json();
    out << "wrote metrics (" << obs::default_registry().size()
        << " series) to " << options.metrics_path << "\n";
  }
  if (!options.profile_path.empty()) {
    std::ofstream profile(options.profile_path, std::ios::binary);
    if (!profile) {
      err << "cannot write " << options.profile_path << "\n";
      return 2;
    }
    profile << obs::ScopeProfiler::instance().collapsed();
    out << "wrote profile (" << obs::ScopeProfiler::instance().samples()
        << " samples) to " << options.profile_path << "\n";
  }
  if (options.stats) out << obs::default_registry().to_text();

  return outcome.exit_code;
}

}  // namespace dp::cli
