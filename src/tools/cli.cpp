#include "tools/cli.h"

#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "diffprov/diffprov.h"
#include "diffprov/reference.h"
#include "dns/dns.h"
#include "mapred/scenario.h"
#include "ndlog/parser.h"
#include "obs/obs.h"
#include "sdn/scenario.h"

namespace dp::cli {

namespace {

struct Options {
  std::string scenario;
  std::string program_path;
  std::string log_path;
  std::optional<Tuple> good_event;
  std::optional<Tuple> bad_event;
  bool auto_reference = false;
  bool minimize = false;
  std::string show_tree;  // "good" | "bad" | ""
  std::string dot_path;
  bool list_scenarios = false;
  Topology topology;
  std::string trace_path;    // --trace-out: Chrome trace-event JSON
  std::string metrics_path;  // --metrics-out: metrics registry JSON
  bool stats = false;        // --stats: human-readable metrics table
};

struct Problem {
  Program program;
  Topology topology;
  EventLog log;
  std::optional<Tuple> good_event;
  std::optional<Tuple> bad_event;
};

constexpr const char* kUsage =
    "usage: diffprov_cli (--scenario NAME | --program FILE --log FILE)\n"
    "                    --bad 'EVENT' (--good 'EVENT' | --auto-reference)\n"
    "                    [--minimize] [--show-tree good|bad] [--dot FILE]\n"
    "                    [--link A B DELAY]... [--list-scenarios]\n"
    "                    [--trace-out FILE] [--metrics-out FILE] [--stats]\n"
    "\n"
    "observability:\n"
    "  --trace-out FILE    write a Chrome trace-event JSON of the diagnosis\n"
    "                      (open in ui.perfetto.dev or chrome://tracing)\n"
    "  --metrics-out FILE  write the dp.* metrics registry as JSON\n"
    "  --stats             print the metrics registry as a table\n";

std::optional<Problem> builtin_scenario(const std::string& name,
                                        std::ostream& err) {
  for (sdn::Scenario& s : sdn::all_scenarios()) {
    std::string lower = s.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) {
      return Problem{std::move(s.program), std::move(s.topology),
                     std::move(s.log), s.good_event, s.bad_event};
    }
  }
  for (dns::Scenario& s : dns::all_scenarios()) {
    if (s.name == name) {
      return Problem{std::move(s.program), std::move(s.topology),
                     std::move(s.log), s.good_event, s.bad_event};
    }
  }
  for (const char* mr : {"mr1-d", "mr2-d"}) {
    if (name != mr) continue;
    mapred::Scenario s = name == "mr1-d" ? mapred::mr1_declarative()
                                         : mapred::mr2_declarative();
    // The CLI replays the *bad* job; the reference tree is queried out of
    // the good job separately below, so merge both logs is not needed --
    // use the bad log and let --good point at an event of the good job?
    // For built-ins we keep it simple: log = bad job, reference = event
    // that also exists in the bad execution is not available, so fold the
    // good job in by shifting it before the bad one is NOT sound. Instead
    // the MR built-ins expose only the bad job and require
    // --auto-reference or an explicit good event from the same run.
    return Problem{std::move(s.model), Topology{},
                   mapred::declarative_job_log(s.store, s.bad_config),
                   std::nullopt, s.bad_event};
  }
  err << "unknown scenario '" << name << "' (try --list-scenarios)\n";
  return std::nullopt;
}

void list_scenarios(std::ostream& out) {
  out << "built-in scenarios:\n";
  for (const sdn::Scenario& s : sdn::all_scenarios()) {
    std::string lower = s.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    out << "  " << lower << "  -- " << s.description << "\n";
  }
  for (const dns::Scenario& s : dns::all_scenarios()) {
    out << "  " << s.name << "  -- " << s.description << "\n";
  }
  out << "  mr1-d  -- declarative MapReduce, changed reducer count "
         "(use --auto-reference)\n";
  out << "  mr2-d  -- declarative MapReduce, buggy mapper deployment "
         "(use --auto-reference)\n";
}

std::optional<std::string> read_file(const std::string& path,
                                     std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  Options options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        err << arg << " requires " << what << "\n" << kUsage;
        return std::nullopt;
      }
      return args[++i];
    };
    try {
      if (arg == "--scenario") {
        auto v = next("a name");
        if (!v) return 2;
        options.scenario = *v;
      } else if (arg == "--program") {
        auto v = next("a path");
        if (!v) return 2;
        options.program_path = *v;
      } else if (arg == "--log") {
        auto v = next("a path");
        if (!v) return 2;
        options.log_path = *v;
      } else if (arg == "--good") {
        auto v = next("an event tuple");
        if (!v) return 2;
        options.good_event = parse_tuple(*v);
      } else if (arg == "--bad") {
        auto v = next("an event tuple");
        if (!v) return 2;
        options.bad_event = parse_tuple(*v);
      } else if (arg == "--auto-reference") {
        options.auto_reference = true;
      } else if (arg == "--minimize") {
        options.minimize = true;
      } else if (arg == "--show-tree") {
        auto v = next("good|bad");
        if (!v) return 2;
        options.show_tree = *v;
      } else if (arg == "--dot") {
        auto v = next("a path");
        if (!v) return 2;
        options.dot_path = *v;
      } else if (arg == "--link") {
        if (i + 3 >= args.size()) {
          err << "--link requires: A B DELAY\n";
          return 2;
        }
        const std::string a = args[++i];
        const std::string b = args[++i];
        options.topology.connect(a, b, std::stoll(args[++i]));
      } else if (arg == "--list-scenarios") {
        options.list_scenarios = true;
      } else if (arg == "--trace-out") {
        auto v = next("a path");
        if (!v) return 2;
        options.trace_path = *v;
      } else if (arg == "--metrics-out") {
        auto v = next("a path");
        if (!v) return 2;
        options.metrics_path = *v;
      } else if (arg == "--stats") {
        options.stats = true;
      } else if (arg == "--help" || arg == "-h") {
        out << kUsage;
        return 0;
      } else {
        err << "unknown option '" << arg << "'\n" << kUsage;
        return 2;
      }
    } catch (const std::exception& e) {
      err << "bad argument for " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }
  if (options.list_scenarios) {
    list_scenarios(out);
    return 0;
  }

  // Assemble the problem.
  std::optional<Problem> problem;
  if (!options.scenario.empty()) {
    problem = builtin_scenario(options.scenario, err);
    if (!problem) return 2;
  } else if (!options.program_path.empty() && !options.log_path.empty()) {
    const auto program_text = read_file(options.program_path, err);
    const auto log_text = read_file(options.log_path, err);
    if (!program_text || !log_text) return 2;
    Problem p;
    try {
      p.program = parse_program(*program_text);
      p.log = EventLog::from_text(*log_text);
    } catch (const std::exception& e) {
      err << e.what() << "\n";
      return 2;
    }
    p.topology = options.topology;
    problem = std::move(p);
  } else {
    err << kUsage;
    return 2;
  }
  if (options.good_event) problem->good_event = options.good_event;
  if (options.bad_event) problem->bad_event = options.bad_event;
  // --auto-reference overrides a built-in scenario's default reference
  // (an explicit --good still wins).
  if (options.auto_reference && !options.good_event) {
    problem->good_event.reset();
  }
  if (!problem->bad_event) {
    err << "no event of interest: pass --bad 'EVENT'\n";
    return 2;
  }
  if (!problem->good_event && !options.auto_reference) {
    err << "no reference: pass --good 'EVENT' or --auto-reference\n";
    return 2;
  }

  // Observability: spans flow into the default tracer once it is enabled;
  // engines and the recorder publish into the default registry so one dump
  // covers the whole pipeline.
  if (!options.trace_path.empty()) obs::default_tracer().set_enabled(true);
  ReplayOptions replay_options;
  replay_options.engine_config.metrics = &obs::default_registry();

  // Query the trees.
  LogReplayProvider query_provider(problem->program, problem->topology,
                                   problem->log, replay_options);
  const BadRun run = query_provider.replay_bad({});
  const auto bad_tree = locate_tree(*run.graph, *problem->bad_event);
  if (!bad_tree) {
    err << "the event of interest " << problem->bad_event->to_string()
        << " does not occur in the log\n";
    return 1;
  }
  if (options.show_tree == "bad") {
    out << "provenance of " << problem->bad_event->to_string() << " ("
        << bad_tree->size() << " vertexes):\n"
        << bad_tree->to_text() << "\n";
  }
  if (!options.dot_path.empty()) {
    std::ofstream dot(options.dot_path);
    dot << bad_tree->to_dot();
    out << "wrote " << options.dot_path << "\n";
  }

  LogReplayProvider provider(problem->program, problem->topology,
                             problem->log, replay_options);
  DiffProv diffprov(problem->program, provider);
  DiffProvResult result;
  if (problem->good_event) {
    const auto good_tree = locate_tree(*run.graph, *problem->good_event);
    if (!good_tree) {
      err << "the reference event " << problem->good_event->to_string()
          << " does not occur in the log\n";
      return 1;
    }
    if (options.show_tree == "good") {
      out << "provenance of " << problem->good_event->to_string() << " ("
          << good_tree->size() << " vertexes):\n"
          << good_tree->to_text() << "\n";
    }
    result = diffprov.diagnose(*good_tree, *problem->bad_event);
    if (options.minimize && result.ok()) {
      result = diffprov.minimize_delta(*good_tree, result);
    }
  } else {
    const AutoDiagnosis auto_result = diagnose_with_auto_reference(
        diffprov, *run.graph, *problem->bad_event);
    if (auto_result.reference) {
      out << "auto-selected reference: " << auto_result.reference->to_string()
          << " (after trying " << auto_result.candidates_tried
          << " candidate(s))\n";
    }
    result = auto_result.result;
    if (options.minimize && result.ok() && auto_result.reference) {
      const auto good_tree = locate_tree(*run.graph, *auto_result.reference);
      if (good_tree) result = diffprov.minimize_delta(*good_tree, result);
    }
  }

  out << result.to_string();

  if (!options.trace_path.empty()) {
    std::ofstream trace(options.trace_path, std::ios::binary);
    if (!trace) {
      err << "cannot write " << options.trace_path << "\n";
      return 2;
    }
    trace << obs::default_tracer().to_chrome_json();
    out << "wrote trace (" << obs::default_tracer().size() << " events) to "
        << options.trace_path << "\n";
  }
  if (!options.metrics_path.empty()) {
    std::ofstream metrics(options.metrics_path, std::ios::binary);
    if (!metrics) {
      err << "cannot write " << options.metrics_path << "\n";
      return 2;
    }
    metrics << obs::default_registry().to_json();
    out << "wrote metrics (" << obs::default_registry().size()
        << " series) to " << options.metrics_path << "\n";
  }
  if (options.stats) out << obs::default_registry().to_text();

  return result.ok() ? 0 : 1;
}

}  // namespace dp::cli
