// The DiffProv debugger front-end (the paper's section 5 "prototype
// debugger"), factored as a library so tests can drive it.
//
// Two ways in:
//   * built-in scenarios:  diffprov_cli --scenario sdn1
//   * your own system:     diffprov_cli --program net.ndlog --log run.log
//                            --bad 'delivered(@w2, 2, 4.3.3.1, 8.8.1.1)'
//                            --good 'delivered(@w1, 1, 4.3.2.1, 8.8.1.1)'
//
// Event logs use the text format of EventLog::to_text():
//   + policyRoute(@ctl, "sw2", 100, 4.3.2.0/24, "sw6") @ 0
//
// Options:
//   --auto-reference        pick the reference automatically (section 4.9)
//   --minimize              post-minimize the returned change set
//   --show-tree good|bad    print the provenance tree before diagnosing
//   --dot FILE              write the bad tree as Graphviz
//   --link A B DELAY        declare a topology link (repeatable)
//   --list-scenarios        print the built-in scenarios and exit
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dp::cli {

/// Runs the CLI; returns the process exit code. All output goes to the
/// provided streams.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace dp::cli
