// The DiffProv debugger binary. See src/tools/cli.h for usage.
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return dp::cli::run(args, std::cout, std::cerr);
}
