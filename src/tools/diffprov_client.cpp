// diffprov_client: command-line client for diffprovd.
//
// The default action submits a diagnosis query, waits for it, and prints the
// report exactly as diffprov_cli would -- stdout bytes are identical for the
// same query (the CI smoke diffs them). Exit codes mirror the CLI: 0 =
// diagnosis succeeded, 1 = failed/missing event, 2 = usage, 3 = shed by
// admission control or transport error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_check.h"
#include "obs/trace.h"

namespace {

using dp::obs::Json;
using dp::obs::json_quote;

constexpr const char* kUsage =
    "usage: diffprov_client (--port N | --port-file FILE) ACTION\n"
    "\n"
    "actions:\n"
    "  --scenario NAME [--bad 'EVENT'] [--good 'EVENT'] [--auto-reference]\n"
    "      [--minimize] [--bypass-cache]     submit a query and wait\n"
    "  --program FILE --log FILE ...         same, with an inline problem\n"
    "  --stream NAME [--bad ...] [--good ...]  diagnose against a live ingest\n"
    "      stream (no replay: snapshots its always-current graph)\n"
    "  --ingest-open NAME --scenario NAME    open a live ingest stream (the\n"
    "      scenario's program/topology; its log arrives via --ingest).\n"
    "      --program FILE opens over an inline program instead\n"
    "  --ingest NAME --events FILE           stream events (EventLog text,\n"
    "      \"-\" = stdin) into a live stream; --batch N sends N events per\n"
    "      request (default: one request), --seal forces an epoch boundary\n"
    "      after the last batch\n"
    "  --probe 'TUPLE' --scenario NAME       live-state probe\n"
    "  --poll ID | --cancel ID               inspect/cancel a past query\n"
    "  --stats                               server counters\n"
    "  --flightrec                           dump the daemon's flight recorder\n"
    "  --slowz                               dump the slow-query journal\n"
    "  --shutdown                            drain and stop the daemon\n"
    "\n"
    "  --meta          print cache/timing metadata for the query to stderr\n"
    "  --explain       print the query's phase-time profile to stderr\n"
    "  --trace-id HEX  pin the trace id sent with the query (default: minted\n"
    "                  per invocation; spans server-side work in the daemon's\n"
    "                  --trace-out dump under one id)\n";

/// Mints the trace context this invocation stamps on its query: a random
/// nonzero 64-bit id, so concurrent clients never collide and the daemon's
/// trace dump attributes every span of the diagnosis to this run.
std::uint64_t mint_trace_id() {
  std::random_device rd;
  std::uint64_t id =
      (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
  if (id == 0) id = 1;
  return id;
}

/// Renders the response's "profile" object (see DESIGN.md section 12) as the
/// human-readable --explain report.
void print_explain(const Json& response, std::ostream& out) {
  const Json* profile = response.find("profile");
  if (profile == nullptr || profile->kind != Json::Kind::kObject) {
    out << "explain: no profile in response (daemon predates profiles?)\n";
    return;
  }
  const double total = profile->get_number("total_us");
  out << "explain:";
  const std::string trace = profile->get_string("trace_id");
  if (!trace.empty()) out << " trace " << trace;
  out << " total " << static_cast<long long>(total) << " us ("
      << (profile->get_bool("warm_hit") ? "warm session" : "cold session")
      << (response.get_bool("cache_hit") ? ", cache hit" : "") << ", "
      << static_cast<long long>(profile->get_number("rounds")) << " round(s), "
      << static_cast<long long>(profile->get_number("replays"))
      << " replay(s))\n";
  const Json* phases = profile->find("phases");
  if (phases != nullptr && phases->kind == Json::Kind::kObject) {
    for (const char* phase :
         {"session_wait_us", "warm_replay_us", "ingest_snapshot_us",
          "replay_us", "locate_us", "find_seed_us", "annotate_us",
          "divergence_us", "make_appear_us", "diff_replay_us", "minimize_us",
          "other_us"}) {
      const double us = phases->get_number(phase);
      char line[96];
      std::snprintf(line, sizeof(line), "  %-16s %10lld us  %5.1f%%\n", phase,
                    static_cast<long long>(us),
                    total > 0 ? 100.0 * us / total : 0.0);
      out << line;
    }
  }
  out << "  trees: good "
      << static_cast<long long>(profile->get_number("good_tree_size"))
      << " / bad "
      << static_cast<long long>(profile->get_number("bad_tree_size"))
      << " vertexes; +"
      << static_cast<long long>(profile->get_number("vertices_delta"))
      << " provenance vertices this run; store "
      << static_cast<long long>(profile->get_number("store_tuples"))
      << " tuples / "
      << static_cast<long long>(profile->get_number("store_bytes"))
      << " bytes resident\n";
}

class Connection {
 public:
  explicit Connection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket: " + error_text());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      throw std::runtime_error("connect 127.0.0.1:" + std::to_string(port) +
                               ": " + error_text());
    }
  }
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// One request/response round trip, returning the raw response line.
  std::string raw_round_trip(const std::string& request) {
    std::string line = request;
    line.push_back('\n');
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("send: " + error_text());
      }
      sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char c = 0;
    while (true) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("connection closed by daemon");
      if (c == '\n') break;
      response.push_back(c);
    }
    return response;
  }

  /// One round trip, parsed.
  Json round_trip(const std::string& request) {
    const std::string response = raw_round_trip(request);
    std::string error;
    std::optional<Json> parsed = Json::parse(response, error);
    if (!parsed) {
      throw std::runtime_error("bad response from daemon: " + error);
    }
    return std::move(*parsed);
  }

 private:
  static std::string error_text() { return std::strerror(errno); }
  int fd_ = -1;
};

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  std::uint16_t port = 0;
  std::string scenario, program_path, log_path, bad, good, probe_tuple;
  std::string stream, ingest_open_name, ingest_name, events_path;
  std::size_t ingest_batch = 0;  // 0 = the whole file in one request
  bool auto_reference = false, minimize = false, bypass_cache = false;
  bool stats = false, shutdown = false, meta = false, seal = false;
  bool explain = false, flightrec = false, slowz = false;
  std::uint64_t trace_id = 0;  // 0 = mint one per invocation
  std::optional<std::uint64_t> poll_id, cancel_id;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        std::cerr << arg << " requires " << what << "\n" << kUsage;
        return std::nullopt;
      }
      return args[++i];
    };
    try {
      if (arg == "--port") {
        auto v = next("a port");
        if (!v) return 2;
        port = static_cast<std::uint16_t>(std::stoul(*v));
      } else if (arg == "--port-file") {
        auto v = next("a path");
        if (!v) return 2;
        auto text = read_file(*v);
        if (!text) {
          std::cerr << "cannot open " << *v << "\n";
          return 2;
        }
        port = static_cast<std::uint16_t>(std::stoul(*text));
      } else if (arg == "--scenario") {
        auto v = next("a name");
        if (!v) return 2;
        scenario = *v;
      } else if (arg == "--program") {
        auto v = next("a path");
        if (!v) return 2;
        program_path = *v;
      } else if (arg == "--log") {
        auto v = next("a path");
        if (!v) return 2;
        log_path = *v;
      } else if (arg == "--bad") {
        auto v = next("an event tuple");
        if (!v) return 2;
        bad = *v;
      } else if (arg == "--good") {
        auto v = next("an event tuple");
        if (!v) return 2;
        good = *v;
      } else if (arg == "--auto-reference") {
        auto_reference = true;
      } else if (arg == "--minimize") {
        minimize = true;
      } else if (arg == "--bypass-cache") {
        bypass_cache = true;
      } else if (arg == "--stream") {
        auto v = next("a stream name");
        if (!v) return 2;
        stream = *v;
      } else if (arg == "--ingest-open") {
        auto v = next("a stream name");
        if (!v) return 2;
        ingest_open_name = *v;
      } else if (arg == "--ingest") {
        auto v = next("a stream name");
        if (!v) return 2;
        ingest_name = *v;
      } else if (arg == "--events") {
        auto v = next("a path (\"-\" = stdin)");
        if (!v) return 2;
        events_path = *v;
      } else if (arg == "--batch") {
        auto v = next("events per request");
        if (!v) return 2;
        ingest_batch = std::stoul(*v);
      } else if (arg == "--seal") {
        seal = true;
      } else if (arg == "--probe") {
        auto v = next("a tuple");
        if (!v) return 2;
        probe_tuple = *v;
      } else if (arg == "--poll") {
        auto v = next("an id");
        if (!v) return 2;
        poll_id = std::stoull(*v);
      } else if (arg == "--cancel") {
        auto v = next("an id");
        if (!v) return 2;
        cancel_id = std::stoull(*v);
      } else if (arg == "--stats") {
        stats = true;
      } else if (arg == "--flightrec") {
        flightrec = true;
      } else if (arg == "--slowz") {
        slowz = true;
      } else if (arg == "--shutdown") {
        shutdown = true;
      } else if (arg == "--meta") {
        meta = true;
      } else if (arg == "--explain") {
        explain = true;
      } else if (arg == "--trace-id") {
        auto v = next("1-16 hex digits");
        if (!v) return 2;
        if (!dp::obs::parse_trace_id(*v, trace_id)) {
          std::cerr << "--trace-id must be 1-16 hex digits (nonzero)\n";
          return 2;
        }
      } else if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else {
        std::cerr << "unknown option '" << arg << "'\n" << kUsage;
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad argument for " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }
  if (port == 0) {
    std::cerr << "pass --port or --port-file\n" << kUsage;
    return 2;
  }

  if (trace_id == 0) trace_id = mint_trace_id();
  const std::string trace_field =
      ",\"trace\":" + json_quote(dp::obs::format_trace_id(trace_id));

  try {
    Connection connection(port);

    if (flightrec) {
      const std::string raw =
          connection.raw_round_trip("{\"op\":\"flightrec\"}");
      std::string error;
      const std::optional<Json> response = Json::parse(raw, error);
      if (!response || !response->get_bool("ok")) {
        std::cerr << (response
                          ? response->get_string("error", "flightrec failed")
                          : "bad response: " + error)
                  << "\n";
        return 3;
      }
      // Raw JSON: the dump is for jq/scripts as much as eyeballs.
      std::cout << raw << "\n";
      return 0;
    }
    if (slowz) {
      const std::string raw = connection.raw_round_trip("{\"op\":\"slowz\"}");
      std::string error;
      const std::optional<Json> response = Json::parse(raw, error);
      if (!response || !response->get_bool("ok")) {
        std::cerr << (response ? response->get_string("error", "slowz failed")
                               : "bad response: " + error)
                  << "\n";
        return 3;
      }
      // Same document /slowz serves, as raw JSON for jq/scripts.
      std::cout << raw << "\n";
      return 0;
    }
    if (stats) {
      const std::string raw = connection.raw_round_trip("{\"op\":\"stats\"}");
      std::string error;
      const std::optional<Json> response = Json::parse(raw, error);
      if (!response || !response->get_bool("ok")) {
        std::cerr << (response ? response->get_string("error", "stats failed")
                               : "bad response: " + error)
                  << "\n";
        return 3;
      }
      // Stats go to scripts as much as humans: print the raw JSON line.
      std::cout << raw << "\n";
      return 0;
    }
    if (shutdown) {
      const Json response = connection.round_trip("{\"op\":\"shutdown\"}");
      if (!response.get_bool("ok")) {
        std::cerr << response.get_string("error", "shutdown failed") << "\n";
        return 3;
      }
      std::cout << "daemon shutting down\n";
      return 0;
    }
    if (cancel_id) {
      const Json response = connection.round_trip(
          "{\"op\":\"cancel\",\"id\":" + std::to_string(*cancel_id) + "}");
      std::cout << (response.get_bool("cancelled") ? "cancelled\n"
                                                   : "too late to cancel\n");
      return response.get_bool("ok") ? 0 : 3;
    }
    if (!probe_tuple.empty()) {
      if (scenario.empty()) {
        std::cerr << "--probe needs --scenario\n";
        return 2;
      }
      const Json response = connection.round_trip(
          "{\"op\":\"probe\",\"scenario\":" + json_quote(scenario) +
          ",\"tuple\":" + json_quote(probe_tuple) + trace_field + "}");
      if (!response.get_bool("ok")) {
        std::cerr << response.get_string("error", "probe failed") << "\n";
        return 3;
      }
      std::cout << (response.get_bool("live") ? "live\n" : "not live\n");
      return response.get_bool("live") ? 0 : 1;
    }
    if (!ingest_open_name.empty()) {
      std::ostringstream request;
      request << "{\"op\":\"ingest_open\",\"stream\":"
              << json_quote(ingest_open_name);
      if (!scenario.empty()) {
        request << ",\"scenario\":" << json_quote(scenario);
      } else if (!program_path.empty()) {
        const auto program_text = read_file(program_path);
        if (!program_text) {
          std::cerr << "cannot open " << program_path << "\n";
          return 2;
        }
        request << ",\"program\":" << json_quote(*program_text);
      } else {
        std::cerr << "--ingest-open needs --scenario or --program\n";
        return 2;
      }
      request << "}";
      const Json response = connection.round_trip(request.str());
      if (!response.get_bool("ok")) {
        std::cerr << response.get_string("error", "ingest_open failed")
                  << "\n";
        return 3;
      }
      std::cout << "stream " << ingest_open_name << " open\n";
      return 0;
    }
    if (!ingest_name.empty()) {
      if (events_path.empty()) {
        std::cerr << "--ingest needs --events FILE (\"-\" = stdin)\n";
        return 2;
      }
      std::string events_text;
      if (events_path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        events_text = buffer.str();
      } else {
        const auto text = read_file(events_path);
        if (!text) {
          std::cerr << "cannot open " << events_path << "\n";
          return 2;
        }
        events_text = *text;
      }
      // Streaming mode: --batch N sends N event lines per request over the
      // one connection, the live-tap shape (events trickle in, the daemon's
      // graph stays current); the default ships the file in one request.
      std::vector<std::string> batches;
      if (ingest_batch == 0) {
        batches.push_back(std::move(events_text));
      } else {
        std::istringstream lines(events_text);
        std::string line, batch;
        std::size_t in_batch = 0;
        while (std::getline(lines, line)) {
          batch += line;
          batch += '\n';
          if (++in_batch >= ingest_batch) {
            batches.push_back(std::move(batch));
            batch.clear();
            in_batch = 0;
          }
        }
        if (!batch.empty()) batches.push_back(std::move(batch));
      }
      std::size_t accepted = 0;
      Json last;
      for (std::size_t b = 0; b < batches.size(); ++b) {
        std::ostringstream request;
        request << "{\"op\":\"ingest\",\"stream\":" << json_quote(ingest_name)
                << ",\"events\":" << json_quote(batches[b]);
        if (seal && b + 1 == batches.size()) request << ",\"seal\":true";
        request << "}";
        last = connection.round_trip(request.str());
        if (!last.get_bool("ok")) {
          std::cerr << last.get_string("error", "ingest failed") << "\n";
          return 3;
        }
        accepted += static_cast<std::size_t>(last.get_number("accepted"));
      }
      const Json* s = last.find("stream");
      std::cout << "ingested " << accepted << " events into " << ingest_name;
      if (s != nullptr && s->kind == Json::Kind::kObject) {
        std::cout << " (total "
                  << static_cast<long long>(s->get_number("events"))
                  << " events, "
                  << static_cast<long long>(s->get_number("sealed_epochs"))
                  << " epochs, "
                  << static_cast<long long>(s->get_number("segments"))
                  << " segments)";
      }
      std::cout << "\n";
      return 0;
    }
    if (poll_id) {
      const Json response = connection.round_trip(
          "{\"op\":\"poll\",\"id\":" + std::to_string(*poll_id) + "}");
      if (!response.get_bool("ok")) {
        std::cerr << response.get_string("error", "poll failed") << "\n";
        return 3;
      }
      const std::string state = response.get_string("state");
      if (state != "done") {
        std::cout << state << "\n";
        return 0;
      }
      std::cerr << response.get_string("err");
      std::cout << response.get_string("out");
      return static_cast<int>(response.get_number("exit_code", 1));
    }

    // Submit + wait.
    std::ostringstream request;
    request << "{\"op\":\"submit\"";
    if (!stream.empty()) {
      request << ",\"stream\":" << json_quote(stream);
    } else if (!scenario.empty()) {
      request << ",\"scenario\":" << json_quote(scenario);
    } else if (!program_path.empty() && !log_path.empty()) {
      const auto program_text = read_file(program_path);
      const auto log_text = read_file(log_path);
      if (!program_text || !log_text) {
        std::cerr << "cannot open " << (!program_text ? program_path : log_path)
                  << "\n";
        return 2;
      }
      request << ",\"program\":" << json_quote(*program_text)
              << ",\"log\":" << json_quote(*log_text);
    } else {
      std::cerr << kUsage;
      return 2;
    }
    if (!bad.empty()) request << ",\"bad\":" << json_quote(bad);
    if (!good.empty()) request << ",\"good\":" << json_quote(good);
    if (auto_reference) request << ",\"auto_reference\":true";
    if (minimize) request << ",\"minimize\":true";
    if (bypass_cache) request << ",\"bypass_cache\":true";
    request << trace_field << "}";

    const Json submitted = connection.round_trip(request.str());
    if (!submitted.get_bool("ok")) {
      if (submitted.get_bool("shed")) {
        std::cerr << "shed: " << submitted.get_string("error") << "\n";
        return 3;
      }
      std::cerr << submitted.get_string("error", "submit failed") << "\n";
      return 2;
    }
    const auto id = static_cast<std::uint64_t>(submitted.get_number("id"));
    const Json response = connection.round_trip(
        "{\"op\":\"wait\",\"id\":" + std::to_string(id) + "}");
    if (!response.get_bool("ok")) {
      std::cerr << response.get_string("error", "wait failed") << "\n";
      return 3;
    }
    if (response.get_string("state") != "done") {
      std::cerr << "query " << response.get_string("state") << "\n";
      return 3;
    }
    if (meta) {
      std::cerr << "id " << id << " trace "
                << dp::obs::format_trace_id(trace_id) << " cache_hit "
                << (response.get_bool("cache_hit") ? "yes" : "no")
                << " coalesced "
                << (response.get_bool("coalesced") ? "yes" : "no")
                << " queue_us " << response.get_number("queue_us")
                << " exec_us " << response.get_number("exec_us") << "\n";
    }
    // Explain goes to stderr: stdout stays byte-identical to the one-shot
    // CLI's diagnosis report (the CI smoke diffs them).
    if (explain) print_explain(response, std::cerr);
    std::cerr << response.get_string("err");
    std::cout << response.get_string("out");
    return static_cast<int>(response.get_number("exit_code", 1));
  } catch (const std::exception& e) {
    std::cerr << "diffprov_client: " << e.what() << "\n";
    return 3;
  }
}
