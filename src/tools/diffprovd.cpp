// diffprovd: the warm diagnosis daemon.
//
// Wraps service::DiagnosisService in the NDJSON-over-loopback-TCP transport
// (service/daemon.h). Runs until a client sends {"op":"shutdown"} or the
// process receives SIGINT/SIGTERM; on the way out it drains queued queries
// and optionally dumps metrics/trace artifacts in the same formats as the
// one-shot CLI (validated by obs_check).
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/flightrec.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "service/daemon.h"
#include "service/service.h"

namespace {

constexpr const char* kUsage =
    "usage: diffprovd [--port N] [--port-file FILE] [--shards N]\n"
    "                 [--workers N] [--queue-cap N] [--max-warm N]\n"
    "                 [--warm-bytes N] [--cache-cap N] [--cache-stripes N]\n"
    "                 [--config-epoch N] [--metrics-out FILE]\n"
    "                 [--trace-out FILE] [--no-flightrec]\n"
    "                 [--worker-deadline-ms N]\n"
    "                 [--ingest-epoch N] [--ingest-checkpoint-every N]\n"
    "                 [--ingest-compact N] [--ingest-retain N]\n"
    "                 [--slow-ms N] [--slow-factor K] [--slow-cap N]\n"
    "                 [--no-profiler] [--profile-interval-ms N]\n"
    "\n"
    "serves diagnosis queries over newline-delimited JSON on\n"
    "127.0.0.1:PORT (default: an ephemeral port, written to --port-file\n"
    "if given). stop it with diffprov_client --shutdown.\n"
    "\n"
    "--shards N (default 1, max 32) splits the service into N independent\n"
    "lanes -- each with its own warm-session set, queue, and --workers\n"
    "worker threads -- keyed by scenario/log hash; --queue-cap is\n"
    "per shard, --max-warm and --warm-bytes are global (rebalanced across\n"
    "shards). the result cache is shared, striped --cache-stripes ways\n"
    "(default 8).\n"
    "\n"
    "live ingest: {\"op\":\"ingest_open\"} + {\"op\":\"ingest\"} stream base\n"
    "events into an always-current provenance graph; submit with\n"
    "\"stream\" diagnoses against it without replay. --ingest-epoch sets\n"
    "events per epoch (default 256), --ingest-checkpoint-every the\n"
    "checkpoint cadence in epochs (default 4), --ingest-compact the\n"
    "resident-segment watermark (default 8), --ingest-retain the\n"
    "checkpoint-covered epochs kept before truncation (default 8).\n"
    "\n"
    "the same port answers HTTP GETs: /metrics (Prometheus text, with\n"
    "dp.*_p50/_p95/_p99/_p999 quantile-sketch series), /healthz, /tracez\n"
    "(flight-recorder dump), /profilez (scope-profiler collapsed stacks,\n"
    "flamegraph-ready), /slowz (slow-query journal). the flight recorder\n"
    "is on by default (--no-flightrec disables); a worker busy longer than\n"
    "--worker-deadline-ms (default 10000, 0 = off) is flagged in\n"
    "dp.service.worker.stuck and triggers flight-recorder + slowz dumps.\n"
    "\n"
    "slow-query capture: a query whose exec time exceeds\n"
    "max(--slow-ms, --slow-factor x live p99) is journaled with its\n"
    "explain profile, trace id, flight-recorder snapshot, and profiler\n"
    "slice (--slow-ms default 1000; 0 = purely adaptive, captures the\n"
    "first query; negative disables; --slow-cap entries kept per shard,\n"
    "default 32). the scope profiler samples every --profile-interval-ms\n"
    "(default 10) unless --no-profiler.\n";

dp::service::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  std::uint16_t port = 0;
  std::string port_file;
  std::string metrics_path;
  std::string trace_path;
  bool flightrec = true;
  bool profiler = true;
  long long profile_interval_ms = 10;
  dp::service::ServiceConfig config;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        std::cerr << arg << " requires " << what << "\n" << kUsage;
        return std::nullopt;
      }
      return args[++i];
    };
    try {
      if (arg == "--port") {
        auto v = next("a port");
        if (!v) return 2;
        port = static_cast<std::uint16_t>(std::stoul(*v));
      } else if (arg == "--port-file") {
        auto v = next("a path");
        if (!v) return 2;
        port_file = *v;
      } else if (arg == "--shards") {
        auto v = next("a count");
        if (!v) return 2;
        config.shards = std::stoul(*v);
      } else if (arg == "--workers") {
        auto v = next("a count");
        if (!v) return 2;
        config.workers = std::stoul(*v);
      } else if (arg == "--queue-cap") {
        auto v = next("a count");
        if (!v) return 2;
        config.queue_capacity = std::stoul(*v);
      } else if (arg == "--max-warm") {
        auto v = next("a count");
        if (!v) return 2;
        config.max_warm_sessions = std::stoul(*v);
      } else if (arg == "--warm-bytes") {
        auto v = next("a byte count (0 = unlimited)");
        if (!v) return 2;
        config.warm_bytes_budget = std::stoull(*v);
      } else if (arg == "--cache-cap") {
        auto v = next("a count");
        if (!v) return 2;
        config.cache_capacity = std::stoul(*v);
      } else if (arg == "--cache-stripes") {
        auto v = next("a count");
        if (!v) return 2;
        config.cache_stripes = std::stoul(*v);
      } else if (arg == "--config-epoch") {
        auto v = next("a number");
        if (!v) return 2;
        config.config_epoch = std::stoull(*v);
      } else if (arg == "--ingest-epoch") {
        auto v = next("events per epoch");
        if (!v) return 2;
        config.ingest.epoch_events = std::stoul(*v);
      } else if (arg == "--ingest-checkpoint-every") {
        auto v = next("an epoch count (0 = never)");
        if (!v) return 2;
        config.ingest.checkpoint_every_epochs = std::stoul(*v);
      } else if (arg == "--ingest-compact") {
        auto v = next("a segment watermark (0 = off)");
        if (!v) return 2;
        config.ingest.compact_watermark = std::stoul(*v);
      } else if (arg == "--ingest-retain") {
        auto v = next("an epoch count");
        if (!v) return 2;
        config.ingest.retain_epochs = std::stoul(*v);
      } else if (arg == "--no-flightrec") {
        flightrec = false;
      } else if (arg == "--no-profiler") {
        profiler = false;
      } else if (arg == "--profile-interval-ms") {
        auto v = next("milliseconds");
        if (!v) return 2;
        profile_interval_ms = std::stoll(*v);
      } else if (arg == "--slow-ms") {
        auto v = next("milliseconds (0 = adaptive only, negative = off)");
        if (!v) return 2;
        config.slow_ms = std::stod(*v);
      } else if (arg == "--slow-factor") {
        auto v = next("a multiplier");
        if (!v) return 2;
        config.slow_factor = std::stod(*v);
      } else if (arg == "--slow-cap") {
        auto v = next("a count");
        if (!v) return 2;
        config.slow_journal_capacity = std::stoul(*v);
      } else if (arg == "--worker-deadline-ms") {
        auto v = next("milliseconds (0 = off)");
        if (!v) return 2;
        config.worker_deadline = std::chrono::milliseconds(std::stoll(*v));
      } else if (arg == "--metrics-out") {
        auto v = next("a path");
        if (!v) return 2;
        metrics_path = *v;
      } else if (arg == "--trace-out") {
        auto v = next("a path");
        if (!v) return 2;
        trace_path = *v;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else {
        std::cerr << "unknown option '" << arg << "'\n" << kUsage;
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad argument for " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }

  if (!trace_path.empty()) dp::obs::default_tracer().set_enabled(true);
  if (flightrec) {
    // Always-on in the daemon: the ring keeps the last moments of every
    // thread for /tracez, the flightrec op, and panic/watchdog dumps.
    dp::obs::FlightRecorder::instance().set_enabled(true);
    dp::obs::FlightRecorder::install_log_hook();
  }
  if (profiler) {
    // Always-on continuous profiling: /profilez serves the accumulated
    // collapsed stacks; slow-query capture attaches per-thread slices.
    dp::obs::ScopeProfiler::instance().start_sampler(
        std::chrono::milliseconds(profile_interval_ms < 1
                                      ? 1
                                      : profile_interval_ms));
  }

  try {
    dp::service::DiagnosisService service(config);
    dp::service::Daemon daemon(service, port);
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << daemon.port() << "\n";
    }
    std::cout << "diffprovd listening on 127.0.0.1:" << daemon.port() << " ("
              << service.shard_count() << " shards x " << config.workers
              << " workers, queue " << config.queue_capacity
              << "/shard; ingest epoch " << config.ingest.epoch_events
              << " events, checkpoint/" << config.ingest.checkpoint_every_epochs
              << " epochs, compact@" << config.ingest.compact_watermark
              << " segments, retain " << config.ingest.retain_epochs
              << " epochs)" << std::endl;

    daemon.serve();
    service.shutdown(/*drain=*/true);
    g_daemon = nullptr;
    dp::obs::ScopeProfiler::instance().stop_sampler();

    std::cout << service.stats().to_text();
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path, std::ios::binary);
      out << service.metrics().to_json();
      std::cout << "wrote metrics (" << service.metrics().size()
                << " series) to " << metrics_path << "\n";
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path, std::ios::binary);
      out << dp::obs::default_tracer().to_chrome_json();
      std::cout << "wrote trace (" << dp::obs::default_tracer().size()
                << " events) to " << trace_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "diffprovd: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
