// Validates observability artifacts: a Chrome trace-event JSON
// (--trace-out), a metrics-registry JSON (--metrics-out), or a Prometheus
// text scrape from diffprovd's /metrics endpoint (--prom). Used by CI to
// assert the artifacts are well-formed, histogram semantics hold (le bounds
// strictly increasing, cumulative counts non-decreasing and capped by
// _count, latency sums non-negative), and the expected spans / series are
// present.
//
//   obs_check --trace trace.json --require dp.diffprov.diagnose \
//             --require-prefix rule:
//   obs_check --metrics metrics.json --require dp.runtime.derivations
//   curl -s localhost:PORT/metrics | obs_check --prom /dev/stdin \
//             --require dp_service_submitted
//
// Exit code 0 on success; 1 with a message on stderr otherwise.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_check.h"

namespace {

constexpr const char* kUsage =
    "usage: obs_check (--trace FILE | --metrics FILE | --prom FILE)\n"
    "                 [--require NAME]... [--require-prefix PREFIX]...\n"
    "                 [--min-events N]\n";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool check_required(const std::set<std::string>& have,
                    const std::vector<std::string>& required,
                    const std::vector<std::string>& prefixes,
                    const char* what) {
  bool ok = true;
  for (const std::string& name : required) {
    if (have.count(name) == 0) {
      std::cerr << "obs_check: missing " << what << " '" << name << "'\n";
      ok = false;
    }
  }
  for (const std::string& prefix : prefixes) {
    bool found = false;
    for (const std::string& name : have) {
      if (name.compare(0, prefix.size(), prefix) == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "obs_check: no " << what << " starts with '" << prefix
                << "'\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string prom_path;
  std::vector<std::string> required;
  std::vector<std::string> prefixes;
  std::size_t min_events = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires an argument\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--prom") {
      prom_path = next();
    } else if (arg == "--require") {
      required.emplace_back(next());
    } else if (arg == "--require-prefix") {
      prefixes.emplace_back(next());
    } else if (arg == "--min-events") {
      min_events = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }
  const int modes = (trace_path.empty() ? 0 : 1) +
                    (metrics_path.empty() ? 0 : 1) + (prom_path.empty() ? 0 : 1);
  if (modes != 1) {
    std::cerr << kUsage;
    return 2;
  }

  std::string text;
  const std::string& path = !trace_path.empty()
                                ? trace_path
                                : (!metrics_path.empty() ? metrics_path
                                                         : prom_path);
  if (!read_file(path, text)) {
    std::cerr << "obs_check: cannot open " << path << "\n";
    return 1;
  }

  if (!trace_path.empty()) {
    const dp::obs::TraceCheck check = dp::obs::check_chrome_trace(text);
    if (!check.ok) {
      std::cerr << "obs_check: " << path << ": " << check.error << "\n";
      return 1;
    }
    if (check.events < min_events) {
      std::cerr << "obs_check: " << path << ": only " << check.events
                << " events (expected >= " << min_events << ")\n";
      return 1;
    }
    if (!check_required(check.names, required, prefixes, "span")) return 1;
    std::cout << "obs_check: " << path << " ok (" << check.events
              << " events)\n";
    return 0;
  }

  if (!prom_path.empty()) {
    const dp::obs::PrometheusCheck check = dp::obs::check_prometheus_text(text);
    if (!check.ok) {
      std::cerr << "obs_check: " << path << ": " << check.error << "\n";
      return 1;
    }
    if (check.series < min_events) {
      std::cerr << "obs_check: " << path << ": only " << check.series
                << " series (expected >= " << min_events << ")\n";
      return 1;
    }
    if (!check_required(check.names, required, prefixes, "series")) return 1;
    std::cout << "obs_check: " << path << " ok (" << check.series
              << " series)\n";
    return 0;
  }

  const dp::obs::MetricsCheck check = dp::obs::check_metrics_json(text);
  if (!check.ok) {
    std::cerr << "obs_check: " << path << ": " << check.error << "\n";
    return 1;
  }
  if (check.series < min_events) {
    std::cerr << "obs_check: " << path << ": only " << check.series
              << " series (expected >= " << min_events << ")\n";
    return 1;
  }
  if (!check_required(check.names, required, prefixes, "series")) return 1;
  std::cout << "obs_check: " << path << " ok (" << check.series
            << " series)\n";
  return 0;
}
