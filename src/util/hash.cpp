#include "util/hash.h"

#include <array>

namespace dp {

std::string checksum_hex(std::string_view content) {
  // Two passes with different seeds give a 128-bit-ish digest folded to 64
  // bits; enough to make collisions implausible at reproduction scale.
  const std::uint64_t a = fnv1a(content);
  const std::uint64_t b = fnv1a(content, 0x84222325cbf29ce4ULL);
  std::uint64_t h = hash_mix(a, b);

  static constexpr std::array<char, 16> kHex = {'0', '1', '2', '3', '4', '5',
                                                '6', '7', '8', '9', 'a', 'b',
                                                'c', 'd', 'e', 'f'};
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace dp
