// Deterministic hashing and content checksums.
//
// Two distinct uses in this reproduction:
//  * fast structural hashing (FNV-1a) for tuple identity, vertex ids, and
//    the MapReduce partitioner;
//  * content "checksums" mimicking the paper's use of HDFS file checksums
//    and Java bytecode signatures (section 5). We render them as short hex
//    digests; cryptographic strength is irrelevant to the reproduction, but
//    the *shape* (content-addressed identity) is preserved.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dp {

/// 64-bit FNV-1a over raw bytes.
constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mix an integer into a running hash (for composite keys).
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Content checksum rendered as a 16-hex-digit digest string, e.g.
/// "c0ffee0123456789". Used for mapper "bytecode" versions and input files.
std::string checksum_hex(std::string_view content);

}  // namespace dp
