#include "util/ip.h"

#include <charconv>

namespace dp {

namespace {
// Parses a decimal integer in [0, max] from the front of `text`, advancing it.
std::optional<int> eat_int(std::string_view& text, int max) {
  int v = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr == begin || v < 0 || v > max) {
    return std::nullopt;
  }
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return v;
}

bool eat_char(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}
}  // namespace

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !eat_char(text, '.')) return std::nullopt;
    auto octet = eat_int(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4(value);
}

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = Ipv4::parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  std::string_view rest = text.substr(slash + 1);
  auto length = eat_int(rest, 32);
  if (!length || !rest.empty()) return std::nullopt;
  return IpPrefix(*base, *length);
}

std::string IpPrefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace dp
