// IPv4 addresses and CIDR prefixes.
//
// The SDN substrate matches packets against prefix rules exactly the way the
// paper's scenarios do (e.g. the SDN1 bug writes 4.3.2.0/23 as 4.3.2.0/24).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dp {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  explicit constexpr Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Parses dotted-quad form; returns nullopt on malformed input.
  static std::optional<Ipv4> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4&, const Ipv4&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 4.3.2.0/23. Normalizes host bits to zero.
class IpPrefix {
 public:
  constexpr IpPrefix() = default;
  constexpr IpPrefix(Ipv4 base, int length)
      : base_(Ipv4(base.value() & mask_for(length))), length_(length) {}

  [[nodiscard]] constexpr Ipv4 base() const { return base_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  /// True if `addr` falls inside this prefix.
  [[nodiscard]] constexpr bool contains(Ipv4 addr) const {
    return (addr.value() & mask_for(length_)) == base_.value();
  }

  /// True if `other` is fully contained in this prefix.
  [[nodiscard]] constexpr bool covers(const IpPrefix& other) const {
    return length_ <= other.length_ && contains(other.base_);
  }

  /// Parses "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<IpPrefix> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IpPrefix&, const IpPrefix&) = default;

 private:
  static constexpr std::uint32_t mask_for(int length) {
    return length <= 0 ? 0u
           : length >= 32
               ? 0xFFFFFFFFu
               : ~((1u << (32 - static_cast<unsigned>(length))) - 1u);
  }

  Ipv4 base_{};
  int length_ = 0;
};

}  // namespace dp
