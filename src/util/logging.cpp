#include "util/logging.h"

#include <cstdio>

namespace dp {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

namespace internal {
void log_emit(LogLevel level, const std::string& message) {
  // Re-checked here so direct log_emit callers stay filtered too (the DP_LOG
  // macros have already short-circuited below-threshold levels).
  if (level < log_level()) return;
  // One fwrite per line: stdio locks the FILE per call (POSIX), so lines
  // from concurrent threads never interleave mid-line.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[dp:";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  if (LogSink sink = g_log_sink.load(std::memory_order_acquire)) {
    sink(level, message.data(), message.size());
  }
}
}  // namespace internal

}  // namespace dp
