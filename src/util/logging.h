// Minimal leveled diagnostics logger for the library itself.
//
// This is *not* the paper's "logging engine" (that lives in src/replay); it
// is plain stderr diagnostics, off by default so benchmarks stay quiet.
//
// DP_LOG short-circuits: when the level is below the threshold the whole
// statement costs one relaxed atomic load and a branch -- the stream, the
// message, and every `<<` operand expression are never evaluated. Emission
// is thread-safe: each line is written with a single stdio call, so
// concurrent loggers never interleave within a line.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace dp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace internal {
inline std::atomic<LogLevel> g_log_level{LogLevel::kWarn};

/// Optional secondary sink for emitted lines (the raw message, no
/// "[dp:LEVEL]" prefix), called after the stderr write. Installed by the
/// obs flight recorder; kept a bare function pointer so util/ stays free of
/// an obs dependency. Null (the default) means "stderr only".
using LogSink = void (*)(LogLevel level, const char* message,
                         std::size_t length);
inline std::atomic<LogSink> g_log_sink{nullptr};

void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns the discarded LogLine expression into void so DP_LOG's ternary has
/// matching branch types (the Chromium LAZY_STREAM idiom).
struct LogVoidify {
  void operator&(const LogLine&) const {}
};
}  // namespace internal

/// Global threshold; messages below it are discarded. Default: kWarn.
inline void set_log_level(LogLevel level) {
  internal::g_log_level.store(level, std::memory_order_relaxed);
}
inline LogLevel log_level() {
  return internal::g_log_level.load(std::memory_order_relaxed);
}

/// Installs (or, with nullptr, removes) the secondary log sink. The sink
/// must be callable from any thread and must not log.
inline void set_log_sink(internal::LogSink sink) {
  internal::g_log_sink.store(sink, std::memory_order_release);
}

}  // namespace dp

// Ternary (not `if`) so the macro is safe inside unbraced if/else and the
// LogLine + every streamed operand are only constructed when the level is
// enabled. `&` binds looser than `<<`, so the whole chain is the ternary's
// else-branch.
#define DP_LOG(level)                                       \
  (::dp::LogLevel::level < ::dp::log_level())               \
      ? (void)0                                             \
      : ::dp::internal::LogVoidify() &                      \
            ::dp::internal::LogLine(::dp::LogLevel::level)
#define DP_DEBUG DP_LOG(kDebug)
#define DP_INFO DP_LOG(kInfo)
#define DP_WARN DP_LOG(kWarn)
#define DP_ERROR DP_LOG(kError)
