// Minimal leveled diagnostics logger for the library itself.
//
// This is *not* the paper's "logging engine" (that lives in src/replay); it
// is plain stderr diagnostics, off by default so benchmarks stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace dp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Default: kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace dp

#define DP_LOG(level) ::dp::internal::LogLine(::dp::LogLevel::level)
#define DP_DEBUG DP_LOG(kDebug)
#define DP_INFO DP_LOG(kInfo)
#define DP_WARN DP_LOG(kWarn)
#define DP_ERROR DP_LOG(kError)
