// Deterministic pseudo-random number generation.
//
// Everything stochastic in the reproduction (synthetic traces, fault
// injection sites, background traffic mixes) draws from this generator so
// that runs -- and therefore replays -- are bit-for-bit reproducible.
#pragma once

#include <cstdint>

namespace dp {

/// xorshift128+ generator. Small, fast, and fully deterministic given the
/// seed; quality is more than sufficient for workload synthesis.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to avoid weak all-zero / low-entropy states.
    std::uint64_t z = seed;
    auto split_mix = [&z]() {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ULL;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebULL;
      return w ^ (w >> 31);
    };
    s0_ = split_mix();
    s1_ = split_mix();
  }

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). `bound` must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Modulo bias is irrelevant for workload synthesis.
    return next_u64() % bound;
  }

  /// Uniform value in [lo, hi] inclusive.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  constexpr bool next_bool(double p) { return next_double() < p; }

 private:
  std::uint64_t s0_ = 1;
  std::uint64_t s1_ = 2;
};

}  // namespace dp
