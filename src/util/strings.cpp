#include "util/strings.h"

#include <array>
#include <cctype>
#include <cstdio>

namespace dp {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string human_bytes(double bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  std::size_t unit = 0;
  while (bytes >= 1024.0 && unit + 1 < kUnits.size()) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace dp
