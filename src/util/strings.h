// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dp {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Renders bytes with binary suffixes, e.g. "1.5 MB". Used by benches.
std::string human_bytes(double bytes);

}  // namespace dp
