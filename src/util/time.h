// Logical time for the deterministic simulator.
//
// All timestamps in the runtime, the provenance graph and the event log are
// *logical* microseconds. Wall-clock time never enters the system model (it
// is only used by benchmarks to measure our own costs), which is what makes
// deterministic replay (paper section 4.6/4.8) possible.
#pragma once

#include <cstdint>
#include <limits>

namespace dp {

/// Logical time in microseconds since simulation start.
using LogicalTime = std::int64_t;

/// Sentinel meaning "still valid" / "has not ended" for temporal intervals.
inline constexpr LogicalTime kTimeInfinity =
    std::numeric_limits<LogicalTime>::max();

/// A half-open validity interval [start, end). `end == kTimeInfinity` means
/// the tuple still exists. This is the temporal dimension of the DTaP-style
/// provenance graph (paper section 3.2).
struct TimeInterval {
  LogicalTime start = 0;
  LogicalTime end = kTimeInfinity;

  /// True if `t` falls inside [start, end).
  [[nodiscard]] constexpr bool contains(LogicalTime t) const {
    return t >= start && t < end;
  }

  /// True if the interval has not been closed yet.
  [[nodiscard]] constexpr bool open_ended() const {
    return end == kTimeInfinity;
  }

  friend constexpr bool operator==(const TimeInterval&,
                                   const TimeInterval&) = default;
};

}  // namespace dp
