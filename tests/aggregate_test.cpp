// Tests for engine-level aggregation (`agg count` / `agg sum` rules): the
// running value, displacement of the previous aggregate, the provenance
// contribution chain, and validation of malformed aggregate rules.
#include <gtest/gtest.h>

#include "diffprov/seed.h"
#include "ndlog/parser.h"
#include "provenance/recorder.h"
#include "runtime/engine.h"

namespace dp {
namespace {

constexpr const char* kCountProgram = R"(
  table hit(3) base immutable event.      // hit(@N, Key, Weight)
  table hits(3) derived keys(0, 1).       // hits(@N, Key, Total)
  table weight(3) derived keys(0, 1).     // weight(@N, Key, Sum)
  rule c agg count Total hits(@N, K, Total) :- hit(@N, K, W).
  rule s agg sum Sum W weight(@N, K, Sum) :- hit(@N, K, W).
)";

TEST(Aggregate, CountAndSumAccumulatePerGroup) {
  Engine engine((parse_program(kCountProgram)));
  LogicalTime t = 0;
  for (const auto& [key, weight] :
       std::vector<std::pair<const char*, int>>{
           {"a", 5}, {"a", 7}, {"b", 1}, {"a", 2}, {"b", 10}}) {
    engine.schedule_insert(Tuple("hit", {Value("n"), Value(key),
                                         Value(weight)}),
                           t += 10);
  }
  engine.run();
  EXPECT_TRUE(engine.is_live(Tuple("hits", {Value("n"), Value("a"),
                                            Value(3)})));
  EXPECT_TRUE(engine.is_live(Tuple("hits", {Value("n"), Value("b"),
                                            Value(2)})));
  EXPECT_TRUE(engine.is_live(Tuple("weight", {Value("n"), Value("a"),
                                              Value(14)})));
  EXPECT_TRUE(engine.is_live(Tuple("weight", {Value("n"), Value("b"),
                                              Value(11)})));
  // Intermediate values were displaced, not accumulated as extra rows.
  EXPECT_EQ(engine.live_tuples("hits").size(), 2u);
  // ... but their temporal history remains queryable.
  EXPECT_TRUE(engine.existed_at(Tuple("hits", {Value("n"), Value("a"),
                                               Value(1)}),
                                15));
}

TEST(Aggregate, ProvenanceFormsAContributionChain) {
  ProvenanceRecorder recorder;
  Engine engine((parse_program(kCountProgram)));
  engine.add_observer(&recorder);
  for (int i = 0; i < 4; ++i) {
    engine.schedule_insert(
        Tuple("hit", {Value("n"), Value("a"), Value(1)}),
        10 * (i + 1));
  }
  engine.run();
  const Tuple final_count("hits", {Value("n"), Value("a"), Value(4)});
  const auto exist = recorder.graph().exist_at(final_count, engine.now());
  ASSERT_TRUE(exist.has_value());
  const ProvTree tree = ProvTree::project(recorder.graph(), *exist);
  // Chain: count(4) <- [hit, count(3)] <- ... <- count(1) <- [hit]. Each
  // link adds EXIST/APPEAR/DERIVE for the aggregate plus the hit chain.
  int derive_links = 0;
  int count_values = 0;
  tree.visit([&](ProvTree::NodeIndex i) {
    const Vertex& v = tree.vertex_of(i);
    if (v.kind == VertexKind::kDerive && v.rule() == "c") ++derive_links;
    if (v.kind == VertexKind::kExist && v.tuple().table() == "hits") {
      ++count_values;
    }
  });
  EXPECT_EQ(derive_links, 4);
  EXPECT_EQ(count_values, 4);
  // The tree's depth grows with the number of contributions.
  EXPECT_GT(tree.depth(), 12u);
  // The seed of the chain is the FIRST hit... no: the trigger chain follows
  // the *latest* appearance at each derive, which is the newest hit.
  const auto seed = find_seed(tree);
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ(seed->tuple.table(), "hit");
  EXPECT_EQ(seed->time, 40);  // the last contribution
}

TEST(Aggregate, GroupsAreIndependentAcrossNodes) {
  Engine engine((parse_program(kCountProgram)));
  engine.schedule_insert(Tuple("hit", {Value("n1"), Value("k"), Value(1)}),
                         10);
  engine.schedule_insert(Tuple("hit", {Value("n2"), Value("k"), Value(1)}),
                         20);
  engine.run();
  EXPECT_TRUE(engine.is_live(Tuple("hits", {Value("n1"), Value("k"),
                                            Value(1)})));
  EXPECT_TRUE(engine.is_live(Tuple("hits", {Value("n2"), Value("k"),
                                            Value(1)})));
}

TEST(Aggregate, DownstreamRulesSeeEveryUpdate) {
  Engine engine(parse_program(R"(
    table hit(2) base immutable event.
    table hits(2) derived keys(0).
    table big(2) derived keys(0).
    rule c agg count Total hits(@N, Total) :- hit(@N, X).
    rule b big(@N, Total) :- hits(@N, Total), Total >= 3.
  )"));
  for (int i = 0; i < 5; ++i) {
    engine.schedule_insert(Tuple("hit", {Value("n"), Value(i)}), 10 * (i + 1));
  }
  engine.run();
  EXPECT_TRUE(engine.is_live(Tuple("big", {Value("n"), Value(5)})));
  EXPECT_FALSE(engine.is_live(Tuple("big", {Value("n"), Value(2)})));
}

TEST(Aggregate, ValidationRejectsMalformedAggRules) {
  // Aggregate variable bound in the body.
  EXPECT_THROW(parse_program(R"(
    table hit(2) base event immutable.
    table hits(2) derived keys(0).
    rule c agg count X hits(@N, X) :- hit(@N, X).
  )"),
               ProgramError);
  // Aggregate variable missing from the head.
  EXPECT_THROW(parse_program(R"(
    table hit(2) base event immutable.
    table hits(2) derived keys(0, 1).
    rule c agg count Total hits(@N, X) :- hit(@N, X).
  )"),
               ProgramError);
  // Aggregate column inside the keys (could never displace).
  EXPECT_THROW(parse_program(R"(
    table hit(2) base event immutable.
    table hits(2) derived keys(0, 1).
    rule c agg count Total hits(@N, Total) :- hit(@N, X).
  )"),
               ProgramError);
  // No keys at all.
  EXPECT_THROW(parse_program(R"(
    table hit(2) base event immutable.
    table hits(2) derived.
    rule c agg count Total hits(@N, Total) :- hit(@N, X).
  )"),
               ProgramError);
  // Summed variable unbound.
  EXPECT_THROW(parse_program(R"(
    table hit(2) base event immutable.
    table hits(2) derived keys(0).
    rule c agg sum Total W hits(@N, Total) :- hit(@N, X).
  )"),
               ProgramError);
  // Event head.
  EXPECT_THROW(parse_program(R"(
    table hit(2) base event immutable.
    table hits(2) derived keys(0) event.
    rule c agg count Total hits(@N, Total) :- hit(@N, X).
  )"),
               ProgramError);
}

TEST(Aggregate, RoundTripsThroughToString) {
  const Program program = parse_program(kCountProgram);
  const Program reparsed = parse_program(program.to_string());
  EXPECT_EQ(program.to_string(), reparsed.to_string());
  ASSERT_TRUE(program.find_rule("s")->agg.has_value());
  EXPECT_EQ(program.find_rule("s")->agg->sum_var, "W");
}

}  // namespace
}  // namespace dp
