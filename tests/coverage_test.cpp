// Targeted coverage for paths the main suites reach only implicitly:
// Stanford delta inserts, the early-apply retry, CLI minimization, builtin
// edge cases, vertex rendering, and NetCore error paths.
#include <gtest/gtest.h>

#include <sstream>

#include "diffprov/diffprov.h"
#include "mapred/scenario.h"
#include "ndlog/parser.h"
#include "netcore/netcore.h"
#include "sdn/stanford.h"
#include "tools/cli.h"

namespace dp {
namespace {

TEST(StanfordDelta, InsertAddsAnOverridingEntry) {
  sdn::StanfordConfig config;
  config.filler_entries_per_router = 10;
  config.acl_rules = 4;
  config.background_packets = 40;
  const sdn::StanfordNetwork net = sdn::build_stanford(config);
  const Program spec = sdn::make_stanford_spec();
  sdn::StanfordReplayProvider provider(net, spec);

  // Outrank the drop rule with a deliver entry for H2's subnet.
  Delta delta;
  delta.push_back(
      {DeltaOp::Kind::kInsert,
       parse_tuple(R"(flowEntry(@oz02, 9000, 172.20.10.32/27, "h2"))"),
       net.workload.back().time - 1});
  const BadRun run = provider.replay_bad(delta);
  EXPECT_FALSE(locate_tree(*run.graph, net.bad_event).has_value());
  const Tuple fixed("delivered", {Value("h2"), net.bad_event.at(1),
                                  net.bad_event.at(2), net.bad_event.at(3)});
  EXPECT_TRUE(locate_tree(*run.graph, fixed).has_value());
  // Upsert on (node, prio): re-inserting prio 9000 with a new action
  // displaces the first injection.
  Delta second = delta;
  second.push_back(
      {DeltaOp::Kind::kInsert,
       parse_tuple(R"(flowEntry(@oz02, 9000, 172.20.10.32/27, "dr"))"),
       net.workload.back().time - 1});
  const BadRun run2 = provider.replay_bad(second);
  EXPECT_TRUE(locate_tree(*run2.graph, net.bad_event).has_value());
}

TEST(EarlyApplyRetry, AggregateChainsNeedTheSecondPhase) {
  // MR1-D: the jobConfG fix is found in round 1, but the count chain needs
  // it from the start of the job, so the diagnosis goes through the
  // early-apply retry (rounds > changes-bearing rounds).
  const mapred::Diagnosis d = mapred::diagnose(mapred::mr1_declarative());
  ASSERT_TRUE(d.result.ok()) << d.result.to_string();
  EXPECT_EQ(d.result.changes.size(), 1u);
  EXPECT_EQ(d.result.changes_per_round.size(), 1u);
  EXPECT_GE(d.result.rounds, 2);  // extra round(s) for the re-applied ops
  // The final ops were re-timed before the seed.
  for (const DeltaOp& op : d.result.delta) {
    EXPECT_LT(op.at, d.result.bad_seed_time);
  }
}

TEST(Cli, MinimizeFlagOnBuiltinScenario) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::run({"--scenario", "sdn1", "--minimize", "--good",
                           "delivered(@w1, 1, 4.3.2.1, 8.8.1.1)", "--bad",
                           "delivered(@w2, 2, 4.3.3.1, 8.8.1.1)"},
                          out, err);
  EXPECT_EQ(rc, 0) << out.str() << err.str();
  EXPECT_NE(out.str().find("1 change(s)"), std::string::npos);
}

TEST(Builtins, OutSplitsActionLists) {
  Bindings none;
  EXPECT_EQ(eval_expr(*parse_expression(R"(f_out("w1+d1", 0))"), none)
                .as_string(),
            "w1");
  EXPECT_EQ(eval_expr(*parse_expression(R"(f_out("w1+d1", 1))"), none)
                .as_string(),
            "d1");
  EXPECT_EQ(eval_expr(*parse_expression(R"(f_out("w1+d1", 2))"), none)
                .as_string(),
            "");
  EXPECT_EQ(eval_expr(*parse_expression(R"(f_out("solo", 0))"), none)
                .as_string(),
            "solo");
  EXPECT_EQ(eval_expr(*parse_expression(R"(f_out("solo", 5))"), none)
                .as_string(),
            "");
}

TEST(Vertex, LabelsRenderAllKinds) {
  ProvenanceGraph graph;
  const Tuple t = parse_tuple("cfg(@n, 1)");
  graph.record_base_insert(t, 5, false);
  graph.record_base_delete(t, 9);
  // INSERT, APPEAR, EXIST (closed), DELETE, DISAPPEAR all render.
  std::set<std::string> kinds;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const std::string label = graph.vertex(static_cast<VertexId>(i)).label();
    EXPECT_NE(label.find("cfg(@n, 1)"), std::string::npos);
    kinds.insert(label.substr(0, label.find(' ')));
  }
  EXPECT_EQ(kinds, (std::set<std::string>{"INSERT", "APPEAR", "EXIST",
                                          "DELETE", "DISAPPEAR"}));
  // The closed EXIST shows its interval.
  bool found_interval = false;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Vertex& v = graph.vertex(static_cast<VertexId>(i));
    if (v.kind == VertexKind::kExist) {
      EXPECT_NE(v.label().find("[5, 9)"), std::string::npos) << v.label();
      found_interval = true;
    }
  }
  EXPECT_TRUE(found_interval);
}

TEST(NetCore, PriorityBudgetOverflowIsReported) {
  // A classifier deeper than the priority budget must be rejected, not
  // silently wrapped.
  std::string source = "switch s { ";
  std::string closing;
  for (int i = 0; i < 5; ++i) {
    source += "if src in 10." + std::to_string(i) + ".0.0/16 then fwd(a" +
              std::to_string(i) + ") else ";
  }
  source += "drop }";
  const auto program = netcore::parse_netcore(source);
  EventLog log;
  EXPECT_THROW(netcore::emit_policy_routes(program, log, 0,
                                           /*top_priority=*/3),
               netcore::NetCoreError);
  // With a sufficient budget it succeeds and produces 6 rows.
  netcore::emit_policy_routes(program, log, 0, /*top_priority=*/100);
  EXPECT_EQ(log.size(), 6u);
}

TEST(Table1Consistency, ScenarioEventsMatchComputedCounts) {
  // The MR scenarios' count events must match what the jobs really produce
  // -- a regression guard for the picker logic.
  for (const mapred::Scenario& s :
       {mapred::mr1_imperative(), mapred::mr2_imperative()}) {
    const mapred::JobOutput good =
        mapred::run_wordcount(s.store, s.good_config);
    const mapred::JobOutput bad = mapred::run_wordcount(s.store, s.bad_config);
    const auto check = [](const mapred::JobOutput& output,
                          const Tuple& event) {
      const auto reducer = output.counts.find(event.location());
      ASSERT_NE(reducer, output.counts.end()) << event.to_string();
      const auto word = reducer->second.find(event.at(1).as_string());
      ASSERT_NE(word, reducer->second.end()) << event.to_string();
      EXPECT_EQ(word->second, event.at(2).as_int()) << event.to_string();
    };
    check(good, s.good_event);
    check(bad, s.bad_event);
  }
}

}  // namespace
}  // namespace dp
