// Cross-variant consistency: the paper's recorder modes must agree.
//
// The declarative MapReduce runs through the NDlog engine ("infer" mode);
// the imperative job reports its dependencies by hand ("report" mode). For
// the same corpus and configuration, the two provenance graphs must contain
// *structurally identical* trees for every event -- same vertices, same
// rules, same child order, differing only in timestamps. This pins the
// instrumentation against the model, the way the paper's Hadoop hooks had
// to agree with its NDlog reasoning.
//
// Plus: property sweeps for the aggregation engine against a reference
// oracle, and for sharded-vs-monolithic projection over randomized runs.
#include <gtest/gtest.h>

#include "diffprov/treediff.h"
#include "mapred/scenario.h"
#include "ndlog/parser.h"
#include "provenance/recorder.h"
#include "provenance/sharded.h"
#include "runtime/engine.h"
#include "util/rng.h"

namespace dp {
namespace {

// ------------------------------------------------ infer vs report modes --

class CrossVariant : public ::testing::TestWithParam<int> {};

TEST_P(CrossVariant, InferAndReportModesAgreeStructurally) {
  const mapred::Scenario s = GetParam() == 0 ? mapred::mr1_declarative()
                                             : mapred::mr2_declarative();
  // "Infer": the NDlog engine executes the model.
  const EventLog log = mapred::declarative_job_log(s.store, s.good_config);
  LogReplayProvider declarative(s.model, Topology{}, log);
  const BadRun infer_run = declarative.replay_bad({});
  // "Report": the imperative job reports its own derivations.
  mapred::WordCountReplayProvider imperative(s.store, s.good_config);
  const BadRun report_run = imperative.replay_bad({});

  // Compare the full trees of a sample of events of every derived kind.
  std::size_t compared = 0;
  infer_run.graph->for_each_tuple([&](const Tuple& t, const auto& exists) {
    if (t.table() != "wordCount" && t.table() != "wordAt" &&
        t.table() != "jobSetup") {
      return;
    }
    if (compared >= 25) return;
    ++compared;
    const ProvTree infer_tree =
        ProvTree::project(*infer_run.graph, exists.back());
    const auto report_root =
        report_run.graph->latest_exist_before(t, kTimeInfinity);
    ASSERT_TRUE(report_root.has_value()) << t.to_string();
    const ProvTree report_tree =
        ProvTree::project(*report_run.graph, *report_root);
    ASSERT_EQ(infer_tree.size(), report_tree.size()) << t.to_string();
    EXPECT_EQ(plain_tree_diff(infer_tree, report_tree).diff_size(), 0u)
        << t.to_string();
    // Same vertex sequence in pre-order: kinds, tuples and rules.
    for (std::size_t i = 0; i < infer_tree.size(); ++i) {
      const auto index = static_cast<ProvTree::NodeIndex>(i);
      const Vertex& a = infer_tree.vertex_of(index);
      const Vertex& b = report_tree.vertex_of(index);
      ASSERT_EQ(a.kind, b.kind) << t.to_string() << " node " << i;
      ASSERT_EQ(a.tuple(), b.tuple()) << t.to_string() << " node " << i;
      ASSERT_EQ(a.rule(), b.rule()) << t.to_string() << " node " << i;
    }
  });
  EXPECT_GE(compared, 25u);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, CrossVariant, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("MR1")
                                                  : std::string("MR2");
                         });

TEST(CrossVariant, FinalCountsMatchBetweenVariants) {
  const mapred::Scenario s = mapred::mr1_declarative();
  const mapred::JobOutput output =
      mapred::run_wordcount(s.store, s.good_config);
  const EventLog log = mapred::declarative_job_log(s.store, s.good_config);
  LogReplayProvider declarative(s.model, Topology{}, log);
  const BadRun run = declarative.replay_bad({});
  // Every final count computed imperatively is live in the NDlog engine.
  std::size_t checked = 0;
  for (const auto& [reducer, words] : output.counts) {
    for (const auto& [word, count] : words) {
      const Tuple expected("wordCount",
                           {Value(reducer), Value(word), Value(count)});
      EXPECT_TRUE(run.state->existed_at(expected, kTimeInfinity - 1))
          << expected.to_string();
      ++checked;
    }
  }
  EXPECT_GT(checked, 40u);
}

// ---------------------------------------------------- aggregation sweep --

class AggregateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateSweep, RunningValuesMatchAReferenceOracle) {
  Rng rng(GetParam());
  Engine engine(parse_program(R"(
    table hit(3) base immutable event.
    table hits(3) derived keys(0, 1).
    table weight(3) derived keys(0, 1).
    rule c agg count Total hits(@N, K, Total) :- hit(@N, K, W).
    rule s agg sum Sum W weight(@N, K, Sum) :- hit(@N, K, W), W > 0.
  )"));
  std::map<std::pair<std::string, std::string>, std::int64_t> count_oracle;
  std::map<std::pair<std::string, std::string>, std::int64_t> sum_oracle;
  LogicalTime t = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string node = "n" + std::to_string(rng.next_below(3));
    const std::string key = "k" + std::to_string(rng.next_below(4));
    const std::int64_t weight = rng.next_in(-2, 9);
    engine.schedule_insert(
        Tuple("hit", {Value(node), Value(key), Value(weight)}), t += 5);
    ++count_oracle[{node, key}];
    if (weight > 0) sum_oracle[{node, key}] += weight;  // the W > 0 guard
  }
  engine.run();
  for (const auto& [group, expected] : count_oracle) {
    EXPECT_TRUE(engine.is_live(Tuple(
        "hits", {Value(group.first), Value(group.second), Value(expected)})))
        << group.first << "/" << group.second;
  }
  for (const auto& [group, expected] : sum_oracle) {
    EXPECT_TRUE(engine.is_live(Tuple(
        "weight",
        {Value(group.first), Value(group.second), Value(expected)})))
        << group.first << "/" << group.second;
  }
  // One live aggregate per (node, key) group and per rule.
  EXPECT_EQ(engine.live_tuples("hits").size(), count_oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregateSweep, ::testing::Range<std::uint64_t>(1, 9));

// --------------------------------------------------- sharded projection --

class ShardedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedSweep, ProjectionEqualsMonolithicOnRandomNetworks) {
  Rng rng(GetParam());
  const Program program = parse_program(R"(
    table packet(3) base immutable event.
    table flowEntry(4) keys(0, 2) base mutable.
    table packetAt(3) derived event.
    table fwd(4) derived event.
    table delivered(3) derived.
    rule r0 packetAt(@Sw, Pkt, Dst) :- packet(@Sw, Pkt, Dst).
    rule r1 argmax Prio
      fwd(@Sw, Pkt, Dst, Next) :-
        packetAt(@Sw, Pkt, Dst), flowEntry(@Sw, Prio, Prefix, Next),
        f_matches(Dst, Prefix) == 1.
    rule r2 packetAt(@Next, Pkt, Dst) :- fwd(@Sw, Pkt, Dst, Next),
        f_strlen(Next) > 2.
    rule r3 delivered(@Next, Pkt, Dst) :- fwd(@Sw, Pkt, Dst, Next),
        f_strlen(Next) <= 2.
  )");
  ProvenanceRecorder monolithic;
  ShardedProvenance sharded;
  Engine engine((Program(program)));
  engine.add_observer(&monolithic);
  engine.add_observer(&sharded);
  const int chain = 2 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < chain; ++i) {
    const std::string self = "sws" + std::to_string(i);
    const std::string next =
        i + 1 == chain ? "h1" : "sws" + std::to_string(i + 1);
    engine.schedule_insert(
        Tuple("flowEntry", {Value(self), Value(1),
                            Value(*IpPrefix::parse("0.0.0.0/0")),
                            Value(next)}),
        0);
  }
  const int packets = 5 + static_cast<int>(rng.next_below(10));
  for (int i = 0; i < packets; ++i) {
    engine.schedule_insert(
        Tuple("packet",
              {Value("sws0"), Value(std::int64_t(i)),
               Value(Ipv4(static_cast<std::uint32_t>(rng.next_u64())))}),
        100 + 10 * i);
  }
  engine.run();
  int compared = 0;
  monolithic.graph().for_each_tuple([&](const Tuple& t, const auto& exists) {
    if (t.table() != "delivered") return;
    const ProvTree mono = ProvTree::project(monolithic.graph(), exists.back());
    const auto dist = sharded.project(t);
    ASSERT_TRUE(dist.has_value()) << t.to_string();
    EXPECT_EQ(mono.size(), dist->size()) << t.to_string();
    EXPECT_EQ(plain_tree_diff(mono, *dist).diff_size(), 0u) << t.to_string();
    ++compared;
  });
  EXPECT_EQ(compared, packets);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardedSweep, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dp
