// Tests for the diffprovd transport: the NDJSON protocol handler (no
// sockets) and the loopback TCP daemon end-to-end -- a raw socket client
// submits queries and the served bytes must equal the in-process CLI's
// stdout exactly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_check.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "service/service.h"
#include "tools/cli.h"

namespace dp::service {
namespace {

using obs::Json;
using obs::json_quote;

std::string cli_stdout(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  cli::run(args, out, err);
  return out.str();
}

Json parse_ok(const std::string& line) {
  std::string error;
  auto json = Json::parse(line, error);
  EXPECT_TRUE(json.has_value()) << error << " in: " << line;
  return json.value_or(Json{});
}

// ------------------------------------------------------------ protocol --

TEST(Protocol, SubmitWaitRoundTripCarriesTheReport) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  bool shutdown_requested = false;
  const Json submitted = parse_ok(handle_request(
      service, R"({"op":"submit","scenario":"sdn1"})", shutdown_requested));
  ASSERT_TRUE(submitted.get_bool("ok"));
  const auto id = static_cast<std::uint64_t>(submitted.get_number("id"));

  const Json done = parse_ok(handle_request(
      service, "{\"op\":\"wait\",\"id\":" + std::to_string(id) + "}",
      shutdown_requested));
  ASSERT_TRUE(done.get_bool("ok"));
  EXPECT_EQ(done.get_string("state"), "done");
  EXPECT_EQ(done.get_string("out"), cli_stdout({"--scenario", "sdn1"}));
  EXPECT_EQ(done.get_number("exit_code", -1), 0);
  EXPECT_FALSE(shutdown_requested);
}

TEST(Protocol, MalformedAndUnknownRequestsAreCleanErrors) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;

  for (const char* line :
       {"this is not json", "[1,2,3]", "{\"op\":\"frobnicate\"}",
        R"({"op":"poll"})", R"({"op":"poll","id":"seven"})",
        R"({"op":"submit","scenario":"nope"})",
        R"({"op":"probe","scenario":"sdn1"})"}) {
    const Json response =
        parse_ok(handle_request(service, line, shutdown_requested));
    EXPECT_FALSE(response.get_bool("ok")) << line;
    EXPECT_FALSE(response.get_string("error").empty()) << line;
  }
  EXPECT_FALSE(shutdown_requested);

  const Json unknown = parse_ok(handle_request(
      service, R"({"op":"poll","id":999999})", shutdown_requested));
  EXPECT_FALSE(unknown.get_bool("ok"));
}

TEST(Protocol, ShutdownOpSetsTheFlag) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;
  const Json response = parse_ok(
      handle_request(service, R"({"op":"shutdown"})", shutdown_requested));
  EXPECT_TRUE(response.get_bool("ok"));
  EXPECT_TRUE(shutdown_requested);
}

TEST(Protocol, StatsReportsCountersAsJson) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;

  const Json submitted = parse_ok(handle_request(
      service, R"({"op":"submit","scenario":"sdn1"})", shutdown_requested));
  handle_request(service,
                 "{\"op\":\"wait\",\"id\":" +
                     std::to_string(static_cast<std::uint64_t>(
                         submitted.get_number("id"))) +
                     "}",
                 shutdown_requested);

  const Json stats =
      parse_ok(handle_request(service, R"({"op":"stats"})", shutdown_requested));
  ASSERT_TRUE(stats.get_bool("ok"));
  const Json* inner = stats.find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->get_number("submitted"), 1);
  EXPECT_EQ(inner->get_number("runs"), 1);
  ASSERT_NE(inner->find("per_session"), nullptr);
}

// -------------------------------------------------------------- daemon --

/// Minimal blocking line client against 127.0.0.1:port.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  std::string round_trip(const std::string& request) {
    std::string line = request + "\n";
    EXPECT_EQ(::send(fd_, line.data(), line.size(), 0),
              static_cast<ssize_t>(line.size()));
    std::string response;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1 && c != '\n') response.push_back(c);
    return response;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

struct DaemonFixture {
  DaemonFixture() : service(make_config()), daemon(service, /*port=*/0) {
    server = std::thread([this] { daemon.serve(); });
  }
  ~DaemonFixture() {
    daemon.stop();
    server.join();
    service.shutdown();
  }
  ServiceConfig make_config() {
    ServiceConfig config;
    config.workers = 2;
    config.metrics = &registry;
    return config;
  }

  obs::MetricsRegistry registry;
  DiagnosisService service;
  Daemon daemon;
  std::thread server;
};

TEST(Daemon, ServesByteIdenticalReportsOverTcp) {
  DaemonFixture fixture;
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());

  const Json submitted = parse_ok(
      client.round_trip(R"({"op":"submit","scenario":"sdn1"})"));
  ASSERT_TRUE(submitted.get_bool("ok")) << submitted.get_string("error");
  const auto id = static_cast<std::uint64_t>(submitted.get_number("id"));
  const Json done = parse_ok(
      client.round_trip("{\"op\":\"wait\",\"id\":" + std::to_string(id) + "}"));
  ASSERT_EQ(done.get_string("state"), "done");
  // The served report survives JSON escaping and the socket byte-for-byte.
  EXPECT_EQ(done.get_string("out"), cli_stdout({"--scenario", "sdn1"}));
}

TEST(Daemon, ConcurrentConnectionsShareTheCache) {
  DaemonFixture fixture;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&fixture, &failures] {
      TestClient client(fixture.daemon.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      const Json submitted = parse_ok(
          client.round_trip(R"({"op":"submit","scenario":"sdn2"})"));
      if (!submitted.get_bool("ok")) {
        ++failures;
        return;
      }
      const Json done = parse_ok(client.round_trip(
          "{\"op\":\"wait\",\"id\":" +
          std::to_string(static_cast<std::uint64_t>(
              submitted.get_number("id"))) +
          "}"));
      if (done.get_string("state") != "done") ++failures;
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  // All four connections asked the same question: one underlying run.
  EXPECT_EQ(fixture.registry.counter("dp.service.runs").value(), 1u);
}

TEST(Daemon, MalformedLinesGetErrorResponsesNotDisconnects) {
  DaemonFixture fixture;
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());

  const Json bad = parse_ok(client.round_trip("{{{{"));
  EXPECT_FALSE(bad.get_bool("ok"));
  // The connection survives for the next, valid request.
  const Json stats = parse_ok(client.round_trip(R"({"op":"stats"})"));
  EXPECT_TRUE(stats.get_bool("ok"));
}

TEST(Daemon, ProbeWorksOverTheWire) {
  DaemonFixture fixture;
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());

  const std::string request =
      std::string(R"({"op":"probe","scenario":"sdn1","tuple":)") +
      json_quote("policyRoute(@ctl, \"sw2\", 100, 4.3.2.0/24, \"sw6\")") + "}";
  const Json response = parse_ok(client.round_trip(request));
  ASSERT_TRUE(response.get_bool("ok")) << response.get_string("error");
  EXPECT_TRUE(response.get_bool("live"));
}

}  // namespace
}  // namespace dp::service
