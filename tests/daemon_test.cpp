// Tests for the diffprovd transport: the NDJSON protocol handler (no
// sockets) and the loopback TCP daemon end-to-end -- a raw socket client
// submits queries and the served bytes must equal the in-process CLI's
// stdout exactly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flightrec.h"
#include "obs/json_check.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "service/service.h"
#include "tools/cli.h"

namespace dp::service {
namespace {

using obs::Json;
using obs::json_quote;

std::string cli_stdout(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  cli::run(args, out, err);
  return out.str();
}

Json parse_ok(const std::string& line) {
  std::string error;
  auto json = Json::parse(line, error);
  EXPECT_TRUE(json.has_value()) << error << " in: " << line;
  return json.value_or(Json{});
}

// ------------------------------------------------------------ protocol --

TEST(Protocol, SubmitWaitRoundTripCarriesTheReport) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  bool shutdown_requested = false;
  const Json submitted = parse_ok(handle_request(
      service, R"({"op":"submit","scenario":"sdn1"})", shutdown_requested));
  ASSERT_TRUE(submitted.get_bool("ok"));
  const auto id = static_cast<std::uint64_t>(submitted.get_number("id"));

  const Json done = parse_ok(handle_request(
      service, "{\"op\":\"wait\",\"id\":" + std::to_string(id) + "}",
      shutdown_requested));
  ASSERT_TRUE(done.get_bool("ok"));
  EXPECT_EQ(done.get_string("state"), "done");
  EXPECT_EQ(done.get_string("out"), cli_stdout({"--scenario", "sdn1"}));
  EXPECT_EQ(done.get_number("exit_code", -1), 0);
  EXPECT_FALSE(shutdown_requested);
}

TEST(Protocol, MalformedAndUnknownRequestsAreCleanErrors) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;

  for (const char* line :
       {"this is not json", "[1,2,3]", "{\"op\":\"frobnicate\"}",
        R"({"op":"poll"})", R"({"op":"poll","id":"seven"})",
        R"({"op":"submit","scenario":"nope"})",
        R"({"op":"probe","scenario":"sdn1"})"}) {
    const Json response =
        parse_ok(handle_request(service, line, shutdown_requested));
    EXPECT_FALSE(response.get_bool("ok")) << line;
    EXPECT_FALSE(response.get_string("error").empty()) << line;
  }
  EXPECT_FALSE(shutdown_requested);

  const Json unknown = parse_ok(handle_request(
      service, R"({"op":"poll","id":999999})", shutdown_requested));
  EXPECT_FALSE(unknown.get_bool("ok"));
}

TEST(Protocol, ShutdownOpSetsTheFlag) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;
  const Json response = parse_ok(
      handle_request(service, R"({"op":"shutdown"})", shutdown_requested));
  EXPECT_TRUE(response.get_bool("ok"));
  EXPECT_TRUE(shutdown_requested);
}

TEST(Protocol, StatsReportsCountersAsJson) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;

  const Json submitted = parse_ok(handle_request(
      service, R"({"op":"submit","scenario":"sdn1"})", shutdown_requested));
  handle_request(service,
                 "{\"op\":\"wait\",\"id\":" +
                     std::to_string(static_cast<std::uint64_t>(
                         submitted.get_number("id"))) +
                     "}",
                 shutdown_requested);

  const Json stats =
      parse_ok(handle_request(service, R"({"op":"stats"})", shutdown_requested));
  ASSERT_TRUE(stats.get_bool("ok"));
  const Json* inner = stats.find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->get_number("submitted"), 1);
  EXPECT_EQ(inner->get_number("runs"), 1);
  ASSERT_NE(inner->find("per_session"), nullptr);
  // Shard visibility: the count plus one queue-depth entry per shard.
  EXPECT_EQ(inner->get_number("shards"), 1);
  const Json* depths = inner->find("shard_queue_depths");
  ASSERT_NE(depths, nullptr);
  ASSERT_EQ(depths->kind, Json::Kind::kArray);
  EXPECT_EQ(depths->array.size(), 1u);
}

// -------------------------------------------------------------- daemon --

/// Minimal blocking line client against 127.0.0.1:port.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  std::string round_trip(const std::string& request) {
    std::string line = request + "\n";
    EXPECT_EQ(::send(fd_, line.data(), line.size(), 0),
              static_cast<ssize_t>(line.size()));
    std::string response;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1 && c != '\n') response.push_back(c);
    return response;
  }

  /// Sends raw bytes (no newline framing) and reads until the server closes
  /// the connection -- the shape of an HTTP exchange.
  std::string raw_round_trip(const std::string& request) {
    EXPECT_EQ(::send(fd_, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char chunk[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd_, chunk, sizeof(chunk), 0)) > 0) {
      response.append(chunk, static_cast<std::size_t>(n));
    }
    return response;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

struct DaemonFixture {
  explicit DaemonFixture(std::size_t shards = 1)
      : service(make_config(shards)), daemon(service, /*port=*/0) {
    server = std::thread([this] { daemon.serve(); });
  }
  ~DaemonFixture() {
    daemon.stop();
    server.join();
    service.shutdown();
  }
  ServiceConfig make_config(std::size_t shards) {
    ServiceConfig config;
    config.shards = shards;
    config.workers = 2;
    config.metrics = &registry;
    return config;
  }

  obs::MetricsRegistry registry;
  DiagnosisService service;
  Daemon daemon;
  std::thread server;
};

TEST(Daemon, ServesByteIdenticalReportsOverTcp) {
  DaemonFixture fixture;
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());

  const Json submitted = parse_ok(
      client.round_trip(R"({"op":"submit","scenario":"sdn1"})"));
  ASSERT_TRUE(submitted.get_bool("ok")) << submitted.get_string("error");
  const auto id = static_cast<std::uint64_t>(submitted.get_number("id"));
  const Json done = parse_ok(
      client.round_trip("{\"op\":\"wait\",\"id\":" + std::to_string(id) + "}"));
  ASSERT_EQ(done.get_string("state"), "done");
  // The served report survives JSON escaping and the socket byte-for-byte.
  EXPECT_EQ(done.get_string("out"), cli_stdout({"--scenario", "sdn1"}));
}

TEST(Daemon, ConcurrentConnectionsShareTheCache) {
  DaemonFixture fixture;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&fixture, &failures] {
      TestClient client(fixture.daemon.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      const Json submitted = parse_ok(
          client.round_trip(R"({"op":"submit","scenario":"sdn2"})"));
      if (!submitted.get_bool("ok")) {
        ++failures;
        return;
      }
      const Json done = parse_ok(client.round_trip(
          "{\"op\":\"wait\",\"id\":" +
          std::to_string(static_cast<std::uint64_t>(
              submitted.get_number("id"))) +
          "}"));
      if (done.get_string("state") != "done") ++failures;
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  // All four connections asked the same question: one underlying run.
  EXPECT_EQ(fixture.registry.counter("dp.service.runs").value(), 1u);
}

TEST(Daemon, ShardedServiceServesByteIdenticalReportsAndShardStats) {
  DaemonFixture fixture(/*shards=*/4);

  // Concurrent clients across all four scenarios: queries route to
  // different shards, bytes still match the CLI exactly.
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&fixture, &failures, t] {
      const std::string scenario = "sdn" + std::to_string(1 + t);
      TestClient client(fixture.daemon.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      const Json submitted = parse_ok(client.round_trip(
          R"({"op":"submit","scenario":")" + scenario + "\"}"));
      if (!submitted.get_bool("ok")) {
        ++failures;
        return;
      }
      const Json done = parse_ok(client.round_trip(
          "{\"op\":\"wait\",\"id\":" +
          std::to_string(static_cast<std::uint64_t>(
              submitted.get_number("id"))) +
          "}"));
      if (done.get_string("state") != "done" ||
          done.get_string("out") != cli_stdout({"--scenario", scenario})) {
        ++failures;
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);

  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());
  const Json stats = parse_ok(client.round_trip(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.get_bool("ok"));
  const Json* inner = stats.find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->get_number("shards"), 4);
  const Json* depths = inner->find("shard_queue_depths");
  ASSERT_NE(depths, nullptr);
  EXPECT_EQ(depths->array.size(), 4u);
  EXPECT_EQ(inner->get_number("runs"), 4);
}

TEST(Daemon, MalformedLinesGetErrorResponsesNotDisconnects) {
  DaemonFixture fixture;
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());

  const Json bad = parse_ok(client.round_trip("{{{{"));
  EXPECT_FALSE(bad.get_bool("ok"));
  // The connection survives for the next, valid request.
  const Json stats = parse_ok(client.round_trip(R"({"op":"stats"})"));
  EXPECT_TRUE(stats.get_bool("ok"));
}

TEST(Daemon, ProbeWorksOverTheWire) {
  DaemonFixture fixture;
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());

  const std::string request =
      std::string(R"({"op":"probe","scenario":"sdn1","tuple":)") +
      json_quote("policyRoute(@ctl, \"sw2\", 100, 4.3.2.0/24, \"sw6\")") + "}";
  const Json response = parse_ok(client.round_trip(request));
  ASSERT_TRUE(response.get_bool("ok")) << response.get_string("error");
  EXPECT_TRUE(response.get_bool("live"));
}

// ----------------------------------------- trace field + introspection --

TEST(Protocol, TraceFieldValidationRejectsMalformedIds) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;

  struct Case {
    const char* request;
    const char* expect_in_error;
  };
  const Case cases[] = {
      {R"({"op":"submit","scenario":"sdn1","trace":123})",
       "must be a string of hex digits"},
      {R"({"op":"submit","scenario":"sdn1","trace":"xyz"})",
       "not a nonzero hex trace id"},
      {R"({"op":"submit","scenario":"sdn1","trace":"0"})",
       "not a nonzero hex trace id"},
      {R"({"op":"submit","scenario":"sdn1","trace":"12345678901234567"})",
       "exceeds 16 hex digits"},
      {R"json({"op":"probe","scenario":"sdn1","tuple":"x()","trace":"zz"})json",
       "not a nonzero hex trace id"},
  };
  for (const Case& c : cases) {
    const Json response =
        parse_ok(handle_request(service, c.request, shutdown_requested));
    EXPECT_FALSE(response.get_bool("ok")) << c.request;
    const std::string error = response.get_string("error");
    EXPECT_NE(error.find("trace parse error"), std::string::npos) << error;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos) << error;
  }
  // A malformed trace id is rejected at the wire: nothing was admitted.
  EXPECT_EQ(registry.counter("dp.service.submitted").value(), 0u);
}

TEST(Protocol, TraceIdRoundTripsOntoEverySpanAndIntoTheProfile) {
  obs::default_tracer().clear();
  obs::default_tracer().set_enabled(true);
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;

  const Json submitted = parse_ok(handle_request(
      service, R"({"op":"submit","scenario":"sdn1","trace":"deadbeef"})",
      shutdown_requested));
  ASSERT_TRUE(submitted.get_bool("ok")) << submitted.get_string("error");
  const Json done = parse_ok(handle_request(
      service,
      "{\"op\":\"wait\",\"id\":" +
          std::to_string(
              static_cast<std::uint64_t>(submitted.get_number("id"))) +
          "}",
      shutdown_requested));
  obs::default_tracer().set_enabled(false);
  ASSERT_EQ(done.get_string("state"), "done");

  // The finished response carries the explain profile, stamped with the
  // client-minted trace id.
  const Json* profile = done.find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->get_string("trace_id"), "deadbeef");
  ASSERT_NE(profile->find("phases"), nullptr);

  // One coherent trace: the worker installed the propagated context, so
  // every span the diagnosis recorded -- service, session, runtime, all on
  // worker threads -- carries the minted id, and no other nonzero id ever
  // appears in this process.
  std::size_t tagged = 0;
  bool saw_service_span = false;
  for (const obs::TraceEvent& event : obs::default_tracer().events()) {
    EXPECT_TRUE(event.trace_id == 0 || event.trace_id == 0xdeadbeefull)
        << event.name;
    if (event.trace_id == 0xdeadbeefull) ++tagged;
    if (event.name == "dp.service.run") {
      saw_service_span = true;
      EXPECT_EQ(event.trace_id, 0xdeadbeefull);
    }
  }
  obs::default_tracer().clear();
  EXPECT_TRUE(saw_service_span);
  EXPECT_GT(tagged, 1u) << "the trace id must propagate past the root span";
}

TEST(Protocol, FlightrecOpReturnsTheRingDump) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  recorder.record_span("dp.test.marker", 0x77, 3);

  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  bool shutdown_requested = false;
  const Json response = parse_ok(
      handle_request(service, R"({"op":"flightrec"})", shutdown_requested));
  recorder.set_enabled(false);
  recorder.clear();

  ASSERT_TRUE(response.get_bool("ok"));
  const Json* dump = response.find("flightrec");
  ASSERT_NE(dump, nullptr);
  EXPECT_TRUE(dump->get_bool("enabled"));
  const Json* events = dump->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);
  bool saw_marker = false;
  for (const Json& event : events->array) {
    if (event.get_string("name") == "dp.test.marker") {
      saw_marker = true;
      EXPECT_EQ(event.get_string("trace_id"), "77");
    }
  }
  EXPECT_TRUE(saw_marker);
}

// ------------------------------------------------- HTTP GET fast path --

/// Sends one raw HTTP request and returns the full response (to EOF: the
/// daemon answers with Connection: close).
std::string http_get(std::uint16_t port, const std::string& path) {
  TestClient client(port);
  EXPECT_TRUE(client.connected());
  return client.raw_round_trip("GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n");
}

std::string http_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(Daemon, MetricsEndpointServesValidPrometheusText) {
  DaemonFixture fixture;
  // Run one query so the scrape has real latency histograms in it.
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());
  const Json submitted = parse_ok(
      client.round_trip(R"({"op":"submit","scenario":"sdn1"})"));
  ASSERT_TRUE(submitted.get_bool("ok"));
  client.round_trip("{\"op\":\"wait\",\"id\":" +
                    std::to_string(static_cast<std::uint64_t>(
                        submitted.get_number("id"))) +
                    "}");

  const std::string response = http_get(fixture.daemon.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);

  const obs::PrometheusCheck check =
      obs::check_prometheus_text(http_body(response));
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_TRUE(check.names.count("dp_service_submitted"));
  EXPECT_TRUE(check.names.count("dp_service_exec_us"));
}

TEST(Daemon, HealthzAndTracezAnswerAndUnknownPathsGet404) {
  DaemonFixture fixture;
  obs::FlightRecorder::instance().set_enabled(true);

  const std::string health = http_get(fixture.daemon.port(), "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_EQ(http_body(health), "ok\n");

  const std::string tracez =
      http_get(fixture.daemon.port(), "/tracez?since=0");
  obs::FlightRecorder::instance().set_enabled(false);
  obs::FlightRecorder::instance().clear();
  EXPECT_EQ(tracez.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(tracez.find("Content-Type: application/json"), std::string::npos);
  std::string error;
  EXPECT_TRUE(Json::parse(http_body(tracez), error).has_value()) << error;

  const std::string missing = http_get(fixture.daemon.port(), "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404 Not Found", 0), 0u);

  // HTTP traffic never disturbs the NDJSON side: a protocol client on a
  // fresh connection still works.
  TestClient client(fixture.daemon.port());
  ASSERT_TRUE(client.connected());
  const Json stats = parse_ok(client.round_trip(R"({"op":"stats"})"));
  EXPECT_TRUE(stats.get_bool("ok"));
}

// ------------------------------------------------- slow-query capture --

TEST(Daemon, SlowQueryCaptureCarriesTraceProfileAndProfilerSlice) {
  obs::ScopeProfiler::instance().clear();
  obs::ScopeProfiler::instance().start_sampler(std::chrono::milliseconds(2));

  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  config.workers = 2;
  // Floor 0 = purely adaptive threshold; the sketch is empty before the
  // first query, so that query always trips capture (the CI smoke relies on
  // the same arming).
  config.slow_ms = 0;
  DiagnosisService service(config);
  Daemon daemon(service, /*port=*/0);
  std::thread server([&daemon] { daemon.serve(); });

  // Scoped so the connection closes before daemon.stop(): serve() joins its
  // per-connection handlers, and a handler blocks on a still-open client.
  {
    TestClient client(daemon.port());
    ASSERT_TRUE(client.connected());
    const Json submitted = parse_ok(client.round_trip(
        R"({"op":"submit","scenario":"sdn1","trace":"c0ffee"})"));
    ASSERT_TRUE(submitted.get_bool("ok")) << submitted.get_string("error");
    const Json done = parse_ok(client.round_trip(
        "{\"op\":\"wait\",\"id\":" +
        std::to_string(
            static_cast<std::uint64_t>(submitted.get_number("id"))) +
        "}"));
    ASSERT_EQ(done.get_string("state"), "done");

    // The journal is populated before the ticket completes, so the entry is
    // visible as soon as wait returns -- over the NDJSON op...
    const Json slowz = parse_ok(client.round_trip(R"({"op":"slowz"})"));
    ASSERT_TRUE(slowz.get_bool("ok"));
    const Json* journal = slowz.find("slowz");
    ASSERT_NE(journal, nullptr);
    EXPECT_GE(journal->get_number("captured"), 1);
    const Json* entries = journal->find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->kind, Json::Kind::kArray);
    bool found = false;
    for (const Json& entry : entries->array) {
      if (entry.get_string("trace_id") != "c0ffee") continue;
      found = true;
      EXPECT_GT(entry.get_number("exec_us"), 0);
      EXPECT_GE(entry.get_number("exec_us"), entry.get_number("threshold_us"));
      // The entry carries the query's explain phase profile...
      const Json* profile = entry.find("profile");
      ASSERT_NE(profile, nullptr);
      EXPECT_EQ(profile->kind, Json::Kind::kObject);
      EXPECT_GT(profile->get_number("total_us"), 0);
      EXPECT_EQ(profile->get_string("trace_id"), "c0ffee");
      // ...and a non-empty collapsed-stack slice from the scope profiler (the
      // capture path's own span guarantees at least one live frame).
      EXPECT_FALSE(entry.get_string("slice").empty());
    }
    EXPECT_TRUE(found) << slowz.get_string("error");
    EXPECT_GE(registry.counter("dp.service.slow.captured").value(), 1u);
  }

  // ...and over the HTTP endpoint, same document.
  const std::string http = http_get(daemon.port(), "/slowz");
  EXPECT_EQ(http.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(http.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(http_body(http).find("c0ffee"), std::string::npos);

  // /profilez serves the sampler's collapsed stacks while it runs.
  const std::string profilez = http_get(daemon.port(), "/profilez");
  EXPECT_EQ(profilez.rfind("HTTP/1.1 200 OK", 0), 0u);

  daemon.stop();
  server.join();
  service.shutdown();
  obs::ScopeProfiler::instance().stop_sampler();
  obs::ScopeProfiler::instance().set_enabled(false);
  obs::ScopeProfiler::instance().clear();
}

TEST(Daemon, NegativeSlowFloorDisablesCapture) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  config.slow_ms = -1;
  DiagnosisService service(config);
  bool shutdown_requested = false;

  const Json submitted = parse_ok(handle_request(
      service, R"({"op":"submit","scenario":"sdn1"})", shutdown_requested));
  ASSERT_TRUE(submitted.get_bool("ok"));
  handle_request(service,
                 "{\"op\":\"wait\",\"id\":" +
                     std::to_string(static_cast<std::uint64_t>(
                         submitted.get_number("id"))) +
                     "}",
                 shutdown_requested);

  const Json slowz = parse_ok(
      handle_request(service, R"({"op":"slowz"})", shutdown_requested));
  ASSERT_TRUE(slowz.get_bool("ok"));
  const Json* journal = slowz.find("slowz");
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->get_number("captured"), 0);
  EXPECT_EQ(registry.counter("dp.service.slow.captured").value(), 0u);
}

}  // namespace
}  // namespace dp::service
