// Tests for the DiffProv core: formulas, inversion, seed finding, taint
// annotation, tree equivalence, the baselines, and end-to-end diagnosis on a
// minimal forwarding network (SDN1/SDN2/SDN3-shaped mini scenarios).
#include <gtest/gtest.h>

#include "diffprov/diffprov.h"
#include "diffprov/treediff.h"
#include "ndlog/parser.h"
#include "replay/logging_engine.h"

namespace dp {
namespace {

Tuple make(const std::string& table, std::vector<Value> values) {
  return Tuple(table, std::move(values));
}

// -------------------------------------------------------------- formulas --

TEST(Formula, EvalAndTaint) {
  // 2 * Seed#1 + 1
  const auto f = Formula::make_binary(
      BinOp::kAdd,
      Formula::make_binary(BinOp::kMul, Formula::make_const(Value(2)),
                           Formula::make_seed_field(1)),
      Formula::make_const(Value(1)));
  EXPECT_TRUE(f->tainted());
  EXPECT_EQ(f->eval({Value(0), Value(10)}).as_int(), 21);
  EXPECT_EQ(f->to_string(), "((2 * Seed#1) + 1)");
  EXPECT_FALSE(Formula::make_const(Value(5))->tainted());
}

TEST(Formula, FromExprSubstitutesEnv) {
  FormulaEnv env;
  env["X"] = Formula::make_seed_field(0);
  const auto f = formula_from_expr(*parse_expression("X * 2 + 1"), env);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ((*f)->eval({Value(3)}).as_int(), 7);
  // Unbound variable -> nullopt.
  EXPECT_FALSE(formula_from_expr(*parse_expression("Y + 1"), env).has_value());
}

TEST(Formula, CallsEvaluateThroughRegistry) {
  FormulaEnv env;
  env["Ip"] = Formula::make_seed_field(0);
  const auto f = formula_from_expr(*parse_expression("f_last_octet(Ip)"), env);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ((*f)->eval({Value(Ipv4(1, 2, 3, 9))}).as_int(), 9);
}

// The paper's section 4.5 example: abc(p, q) derived with q = x + 2 requires
// inverting to x = q - 2.
TEST(Formula, InvertsLinearChain) {
  FormulaEnv env;  // no other vars needed
  const auto inv = invert_expr_for_var(*parse_expression("X + 2"), "X",
                                       Formula::make_const(Value(8)), env);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv)->eval({}).as_int(), 6);
}

TEST(Formula, InvertsNestedArithmetic) {
  // 2 * (X - 3) + 1 == 11  =>  X == 8
  const auto inv =
      invert_expr_for_var(*parse_expression("2 * (X - 3) + 1"), "X",
                          Formula::make_const(Value(11)), {});
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv)->eval({}).as_int(), 8);
}

TEST(Formula, InvertsXorAndNeg) {
  const auto inv_xor = invert_expr_for_var(*parse_expression("X ^ 12"), "X",
                                           Formula::make_const(Value(5)), {});
  ASSERT_TRUE(inv_xor.has_value());
  EXPECT_EQ((*inv_xor)->eval({}).as_int(), 5 ^ 12);

  const auto inv_neg = invert_expr_for_var(*parse_expression("-X"), "X",
                                           Formula::make_const(Value(4)), {});
  ASSERT_TRUE(inv_neg.has_value());
  EXPECT_EQ((*inv_neg)->eval({}).as_int(), -4);
}

TEST(Formula, RefusesNonInvertibleShapes) {
  // Variable on both sides.
  EXPECT_FALSE(invert_expr_for_var(*parse_expression("X + X"), "X",
                                   Formula::make_const(Value(4)), {})
                   .has_value());
  // Hash has no registered solver.
  EXPECT_FALSE(invert_expr_for_var(*parse_expression("f_hash(X)"), "X",
                                   Formula::make_const(Value(4)), {})
                   .has_value());
  // Bit-and is not injective.
  EXPECT_FALSE(invert_expr_for_var(*parse_expression("X & 7"), "X",
                                   Formula::make_const(Value(4)), {})
                   .has_value());
}

TEST(Formula, ModuloTakesTheCanonicalPreimage) {
  // t = X % k has many preimages; DiffProv takes the canonical one (paper
  // section 4.5: "DiffProv can try all of them").
  const auto inv = invert_expr_for_var(*parse_expression("(X + 3) % 7"), "X",
                                       Formula::make_const(Value(4)), {});
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv)->eval({}).as_int(), 1);  // (1 + 3) % 7 == 4
}

TEST(Formula, InvertsThroughRegisteredSolverWithCurrentValue) {
  // f_matches(4.3.3.1, P) == 1 with current P = 4.3.2.0/24 in env.
  FormulaEnv env;
  env["P"] = Formula::make_const(Value(*IpPrefix::parse("4.3.2.0/24")));
  const auto inv = invert_expr_for_var(
      *parse_expression("f_matches(4.3.3.1, P)"), "P",
      Formula::make_const(Value(1)), env);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv)->eval({}).as_prefix().to_string(), "4.3.2.0/23");
}

// ---------------------------------------------------- mini SDN scenarios --

// A three-switch forwarding model matching the paper's scenario shapes.
constexpr const char* kMiniProgram = R"(
  table packet(3) base immutable event.       // packet(@Sw, PktId, Dst)
  table flowEntry(4) keys(0, 2) base mutable. // (@Sw, Prio, Prefix, Next)
  table packetAt(3) derived event.
  table fwd(4) derived event.                 // the matched action
  table delivered(3) derived.

  rule r0 packetAt(@Sw, Pkt, Dst) :- packet(@Sw, Pkt, Dst).
  // The flow table match: one winner per packet per switch (OpenFlow
  // highest-priority semantics).
  rule r1 argmax Prio
    fwd(@Sw, Pkt, Dst, Next) :-
      packetAt(@Sw, Pkt, Dst),
      flowEntry(@Sw, Prio, Prefix, Next),
      f_matches(Dst, Prefix) == 1.
  // Action: forward to the next switch (names longer than 2 chars) or
  // deliver to a host.
  rule r2 packetAt(@Next, Pkt, Dst) :-
      fwd(@Sw, Pkt, Dst, Next), f_strlen(Next) > 2.
  rule r3 delivered(@Next, Pkt, Dst) :-
      fwd(@Sw, Pkt, Dst, Next), f_strlen(Next) <= 2.
)";

struct MiniScenario {
  Program program = parse_program(kMiniProgram);
  Topology topology;
  EventLog log;

  void entry(const std::string& sw, int prio, const std::string& prefix,
             const std::string& next, LogicalTime t = 0) {
    log.append_insert(
        make("flowEntry", {sw, prio, *IpPrefix::parse(prefix), next}), t);
  }
  void expire(const std::string& sw, int prio, const std::string& prefix,
              const std::string& next, LogicalTime t) {
    log.append_delete(
        make("flowEntry", {sw, prio, *IpPrefix::parse(prefix), next}), t);
  }
  void packet(const std::string& sw, int id, const std::string& dst,
              LogicalTime t) {
    log.append_insert(make("packet", {sw, id, *Ipv4::parse(dst)}), t);
  }

  ProvTree tree_of(const Tuple& event) {
    LogReplayProvider provider(program, topology, log);
    auto run = provider.replay_bad({});
    auto tree = locate_tree(*run.graph, event);
    EXPECT_TRUE(tree.has_value()) << event.to_string();
    return std::move(*tree);
  }

  DiffProvResult diagnose(const Tuple& good_event, const Tuple& bad_event) {
    const ProvTree good = tree_of(good_event);
    LogReplayProvider provider(program, topology, log);
    DiffProv diffprov(program, provider);
    return diffprov.diagnose(good, bad_event);
  }
};

// SDN1 shape: overly specific flow entry. Good packet from 4.3.2.1 goes
// S1 -> S2x -> h1; bad packet from 4.3.3.1 falls through to the general rule
// and lands on h2. Root cause: the /24 should have been a /23.
MiniScenario sdn1_mini() {
  MiniScenario s;
  s.entry("S1", 100, "4.3.2.0/24", "S2x");
  s.entry("S1", 1, "0.0.0.0/0", "h2");
  s.entry("S2x", 1, "0.0.0.0/0", "h1");
  s.packet("S1", 1, "4.3.2.1", 100);   // good
  s.packet("S1", 2, "4.3.3.1", 200);   // bad
  return s;
}

TEST(DiffProvEndToEnd, Sdn1PinpointsOverlySpecificEntry) {
  MiniScenario s = sdn1_mini();
  const auto result = s.diagnose(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}),
                                 make("delivered", {"h2", 2, Ipv4(4, 3, 3, 1)}));
  ASSERT_EQ(result.status, DiffProvStatus::kSuccess) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u) << result.to_string();
  const ChangeRecord& change = result.changes[0];
  ASSERT_TRUE(change.before && change.after);
  EXPECT_EQ(change.before->to_string(),
            "flowEntry(@S1, 100, 4.3.2.0/24, \"S2x\")");
  EXPECT_EQ(change.after->to_string(),
            "flowEntry(@S1, 100, 4.3.2.0/23, \"S2x\")");
  EXPECT_EQ(result.rounds, 1);
}

// SDN2 shape: a higher-priority entry overlaps and hijacks traffic that the
// lower-priority entry should carry. Root cause: the blocking entry.
TEST(DiffProvEndToEnd, Sdn2RemovesBlockingHighPriorityEntry) {
  MiniScenario s;
  s.entry("S1", 1, "0.0.0.0/0", "h1");          // intended (to web server)
  s.entry("S1", 50, "10.0.0.0/8", "h2");        // overlapping rule (scrubber)
  s.packet("S1", 1, "9.9.9.9", 100);            // good: only matches /0
  s.packet("S1", 2, "10.1.2.3", 200);           // bad: hijacked to h2
  const auto result = s.diagnose(make("delivered", {"h1", 1, Ipv4(9, 9, 9, 9)}),
                                 make("delivered", {"h2", 2, Ipv4(10, 1, 2, 3)}));
  ASSERT_EQ(result.status, DiffProvStatus::kSuccess) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u) << result.to_string();
  const ChangeRecord& change = result.changes[0];
  ASSERT_TRUE(change.before.has_value());
  EXPECT_FALSE(change.after.has_value());  // a deletion
  EXPECT_EQ(change.before->to_string(),
            "flowEntry(@S1, 50, 10.0.0.0/8, \"h2\")");
}

// SDN3 shape: the good packet is in the past; a rule then expired and later
// traffic is handled by a lower-priority entry. Root cause: the expired rule.
TEST(DiffProvEndToEnd, Sdn3ReinstallsExpiredEntry) {
  MiniScenario s;
  s.entry("S1", 100, "7.7.0.0/16", "h1");  // the rule that will expire
  s.entry("S1", 1, "0.0.0.0/0", "h2");
  s.packet("S1", 1, "7.7.7.7", 100);       // good (rule still installed)
  s.expire("S1", 100, "7.7.0.0/16", "h1", 150);
  s.packet("S1", 2, "7.7.8.8", 200);       // bad (after expiry)
  const auto result = s.diagnose(make("delivered", {"h1", 1, Ipv4(7, 7, 7, 7)}),
                                 make("delivered", {"h2", 2, Ipv4(7, 7, 8, 8)}));
  ASSERT_EQ(result.status, DiffProvStatus::kSuccess) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u) << result.to_string();
  const ChangeRecord& change = result.changes[0];
  EXPECT_FALSE(change.before.has_value());  // pure (re-)insertion
  ASSERT_TRUE(change.after.has_value());
  EXPECT_EQ(change.after->to_string(),
            "flowEntry(@S1, 100, 7.7.0.0/16, \"h1\")");
}

// SDN4 shape: two faults on consecutive hops; DiffProv needs two rounds.
TEST(DiffProvEndToEnd, Sdn4FindsBothFaultsInTwoRounds) {
  MiniScenario s;
  s.entry("S1", 100, "4.3.2.0/24", "S2x");  // fault 1: should be /23
  s.entry("S1", 1, "0.0.0.0/0", "h9");
  s.entry("S2x", 100, "4.3.2.0/24", "S3x");  // fault 2: should be /23
  s.entry("S2x", 1, "0.0.0.0/0", "h8");
  s.entry("S3x", 1, "0.0.0.0/0", "h1");
  s.packet("S1", 1, "4.3.2.1", 100);  // good: S1 -> S2x -> S3x -> h1
  s.packet("S1", 2, "4.3.3.1", 200);  // bad: misrouted at S1 (then at S2x)
  const auto result = s.diagnose(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}),
                                 make("delivered", {"h9", 2, Ipv4(4, 3, 3, 1)}));
  ASSERT_EQ(result.status, DiffProvStatus::kSuccess) << result.to_string();
  EXPECT_EQ(result.changes.size(), 2u) << result.to_string();
  EXPECT_EQ(result.rounds, 2);
  ASSERT_EQ(result.changes_per_round.size(), 2u);
}

// A reference whose seed has a different type is rejected (section 4.7,
// first failure mode).
TEST(DiffProvEndToEnd, SeedTypeMismatchFailsCleanly) {
  MiniScenario s = sdn1_mini();
  // Use a flow entry's "tree" as the reference: its seed is a flowEntry.
  const ProvTree good =
      s.tree_of(make("flowEntry", {"S2x", 1, *IpPrefix::parse("0.0.0.0/0"),
                                   "h1"}));
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const auto result =
      diffprov.diagnose(good, make("delivered", {"h2", 2, Ipv4(4, 3, 3, 1)}));
  EXPECT_EQ(result.status, DiffProvStatus::kSeedTypeMismatch);
  EXPECT_NE(result.message.find("not comparable"), std::string::npos);
}

TEST(DiffProvEndToEnd, BadEventNotFoundFailsCleanly) {
  MiniScenario s = sdn1_mini();
  const ProvTree good = s.tree_of(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}));
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const auto result =
      diffprov.diagnose(good, make("delivered", {"h5", 9, Ipv4(8, 8, 8, 8)}));
  EXPECT_EQ(result.status, DiffProvStatus::kBadEventNotFound);
}

// Immutable tables stop the alignment with a helpful message (section 4.7,
// second failure mode).
TEST(DiffProvEndToEnd, ImmutableEntryFailsWithAttemptedChange) {
  MiniScenario s;
  // Same as SDN1 but the flow table is immutable ("static entries").
  const std::string immutable_program = std::string(kMiniProgram);
  Program program = parse_program(
      std::string(kMiniProgram).replace(
          std::string(kMiniProgram).find("base mutable"), 12,
          "base immutable"));
  s.program = std::move(program);
  s.entry("S1", 100, "4.3.2.0/24", "S2x");
  s.entry("S1", 1, "0.0.0.0/0", "h2");
  s.entry("S2x", 1, "0.0.0.0/0", "h1");
  s.packet("S1", 1, "4.3.2.1", 100);
  s.packet("S1", 2, "4.3.3.1", 200);
  const auto result = s.diagnose(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}),
                                 make("delivered", {"h2", 2, Ipv4(4, 3, 3, 1)}));
  EXPECT_EQ(result.status, DiffProvStatus::kImmutableChange)
      << result.to_string();
  EXPECT_FALSE(result.message.empty());
}

// Timing fields are populated (Figure 8's decomposition).
TEST(DiffProvEndToEnd, TimingDecompositionPopulated) {
  MiniScenario s = sdn1_mini();
  const auto result = s.diagnose(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}),
                                 make("delivered", {"h2", 2, Ipv4(4, 3, 3, 1)}));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.timing.reasoning_us(), 0.0);
  EXPECT_GT(result.timing.replay_us, 0.0);
  EXPECT_GE(result.timing.replays, 2);  // initial + at least one UpdateTree
  EXPECT_GT(result.good_tree_size, 0u);
  EXPECT_GT(result.bad_tree_size, 0u);
}

// ----------------------------------------------------------- tree  diff --

TEST(TreeDiff, PlainDiffCountsUnmatchedVertices) {
  MiniScenario s = sdn1_mini();
  const ProvTree good = s.tree_of(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}));
  const ProvTree bad = s.tree_of(make("delivered", {"h2", 2, Ipv4(4, 3, 3, 1)}));
  const TreeDiffStats stats = plain_tree_diff(good, bad);
  EXPECT_EQ(stats.good_size, good.size());
  EXPECT_EQ(stats.bad_size, bad.size());
  EXPECT_EQ(stats.common + stats.only_in_good, stats.good_size);
  EXPECT_EQ(stats.common + stats.only_in_bad, stats.bad_size);
  // The butterfly effect: the diff dwarfs DiffProv's single-change answer.
  EXPECT_GT(stats.diff_size(), 10u);
}

TEST(TreeDiff, IdenticalTreesHaveZeroDiff) {
  MiniScenario s = sdn1_mini();
  const ProvTree good = s.tree_of(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}));
  const TreeDiffStats stats = plain_tree_diff(good, good);
  EXPECT_EQ(stats.diff_size(), 0u);
  EXPECT_EQ(tree_edit_distance(good, good), 0u);
}

TEST(TreeDiff, EditDistanceBoundedByDiff) {
  MiniScenario s = sdn1_mini();
  const ProvTree good = s.tree_of(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}));
  const ProvTree bad = s.tree_of(make("delivered", {"h2", 2, Ipv4(4, 3, 3, 1)}));
  const std::size_t distance = tree_edit_distance(good, bad);
  EXPECT_GT(distance, 0u);
  EXPECT_LE(distance, good.size() + bad.size());
}

// ------------------------------------------------------------ seeds etc --

TEST(Seed, FindsPacketAsSeed) {
  MiniScenario s = sdn1_mini();
  const ProvTree good = s.tree_of(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}));
  const auto seed = find_seed(good);
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ(seed->tuple.table(), "packet");
  EXPECT_EQ(seed->tuple.at(1).as_int(), 1);
  // The spine runs from the packet up through every hop.
  const auto spine = spine_of(good, *seed);
  EXPECT_GE(spine.size(), 3u);  // r0, r1 (one hop), r2
}

TEST(Annotate, TaintsFollowTheSeedThroughHops) {
  MiniScenario s = sdn1_mini();
  const ProvTree good = s.tree_of(make("delivered", {"h1", 1, Ipv4(4, 3, 2, 1)}));
  const auto seed = find_seed(good);
  ASSERT_TRUE(seed.has_value());
  const auto ann = TreeAnnotations::annotate(good, s.program, *seed);
  EXPECT_GT(ann.tainted_node_count(), 0u);
  // The root (delivered@h1) translated to the bad seed's fields.
  const auto expected = ann.expected_tuple(
      good.root(), {Value("S1"), Value(2), Value(Ipv4(4, 3, 3, 1))});
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(expected->to_string(), "delivered(@h1, 2, 4.3.3.1)");
}

}  // namespace
}  // namespace dp
