// Integration tests for the NDlog runtime: delta evaluation, cross-node
// delivery, argmax (priority) selection, deletion cascades, determinism.
#include <gtest/gtest.h>

#include "ndlog/parser.h"
#include "runtime/engine.h"

namespace dp {
namespace {

Tuple make(const std::string& table, std::vector<Value> values) {
  return Tuple(table, std::move(values));
}

// Collects observer callbacks as readable strings for assertions.
class TraceObserver final : public RuntimeObserver {
 public:
  void on_base_insert(TupleRef tuple, LogicalTime t,
                      bool /*is_event*/) override {
    log.push_back("+" + resolve_tuple(tuple).to_string() + "@" +
                  std::to_string(t));
  }
  void on_base_delete(TupleRef tuple, LogicalTime t) override {
    log.push_back("-" + resolve_tuple(tuple).to_string() + "@" +
                  std::to_string(t));
  }
  void on_derive(TupleRef head, NameRef rule,
                 const std::vector<TupleRef>& body, std::size_t trigger_index,
                 LogicalTime t, bool /*is_event*/) override {
    log.push_back("D[" + resolve_name(rule) + "]" +
                  resolve_tuple(head).to_string() + "@" + std::to_string(t) +
                  " trig=" + resolve_tuple(body[trigger_index]).to_string());
  }
  void on_underive(TupleRef head, NameRef rule, TupleRef /*cause*/,
                   LogicalTime t) override {
    log.push_back("U[" + resolve_name(rule) + "]" +
                  resolve_tuple(head).to_string() + "@" + std::to_string(t));
  }
  std::vector<std::string> log;
};

constexpr const char* kForwardingProgram = R"(
  table packet(3) base immutable event.
  table flowEntry(4) keys(0, 2) base mutable.
  table delivered(3) derived.

  // Forward by highest-priority matching entry; when Next is a host name
  // prefixed "h", the packet is delivered there.
  table packetAt(3) derived event.
  rule r0 packetAt(@Sw, Pkt, Dst) :- packet(@Sw, Pkt, Dst).
  rule r1 argmax Prio
    packetAt(@Next, Pkt, Dst) :-
      packetAt(@Sw, Pkt, Dst),
      flowEntry(@Sw, Prio, Prefix, Next),
      f_matches(Dst, Prefix) == 1,
      f_strlen(Next) > 2.
  rule r2 argmax Prio
    delivered(@Next, Pkt, Dst) :-
      packetAt(@Sw, Pkt, Dst),
      flowEntry(@Sw, Prio, Prefix, Next),
      f_matches(Dst, Prefix) == 1,
      f_strlen(Next) <= 2.
)";

Engine make_forwarding_engine() {
  return Engine(parse_program(kForwardingProgram));
}

TEST(Engine, SingleHopForwarding) {
  Engine engine = make_forwarding_engine();
  engine.schedule_insert(
      make("flowEntry", {"S1", 10, *IpPrefix::parse("10.0.0.0/8"), "h1"}), 0);
  engine.schedule_insert(make("packet", {"S1", 1, Ipv4(10, 1, 1, 1)}), 100);
  engine.run();
  const auto delivered = engine.live_tuples("delivered");
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].location(), "h1");
}

TEST(Engine, MultiHopPathFollowsEntries) {
  Engine engine = make_forwarding_engine();
  const auto any = *IpPrefix::parse("0.0.0.0/0");
  engine.schedule_insert(make("flowEntry", {"S1", 1, any, "S2x"}), 0);
  engine.schedule_insert(make("flowEntry", {"S2x", 1, any, "S3x"}), 0);
  engine.schedule_insert(make("flowEntry", {"S3x", 1, any, "h9"}), 0);
  engine.schedule_insert(make("packet", {"S1", 7, Ipv4(1, 1, 1, 1)}), 50);
  engine.run();
  const auto delivered = engine.live_tuples("delivered");
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].location(), "h9");
  EXPECT_GE(engine.stats().remote_messages, 3u);
}

TEST(Engine, ArgmaxPrefersHigherPriority) {
  // The SDN1 shape: a specific high-priority entry and a general low-priority
  // one. A packet matching both must use the specific entry.
  Engine engine = make_forwarding_engine();
  engine.schedule_insert(
      make("flowEntry", {"S1", 100, *IpPrefix::parse("4.3.2.0/24"), "h1"}), 0);
  engine.schedule_insert(
      make("flowEntry", {"S1", 1, *IpPrefix::parse("0.0.0.0/0"), "h2"}), 0);

  engine.schedule_insert(make("packet", {"S1", 1, Ipv4(4, 3, 2, 1)}), 10);
  engine.schedule_insert(make("packet", {"S1", 2, Ipv4(4, 3, 3, 1)}), 20);
  engine.run();

  const auto delivered = engine.live_tuples("delivered");
  ASSERT_EQ(delivered.size(), 2u);
  // Tuples sort by location: h1 before h2.
  EXPECT_EQ(delivered[0].location(), "h1");
  EXPECT_EQ(delivered[0].at(1).as_int(), 1);
  EXPECT_EQ(delivered[1].location(), "h2");
  EXPECT_EQ(delivered[1].at(1).as_int(), 2);
}

TEST(Engine, UpsertChangesRoutingForLaterPackets) {
  Engine engine = make_forwarding_engine();
  engine.schedule_insert(
      make("flowEntry", {"S1", 5, *IpPrefix::parse("0.0.0.0/0"), "h1"}), 0);
  engine.schedule_insert(make("packet", {"S1", 1, Ipv4(9, 9, 9, 9)}), 10);
  // Same key (node, prefix): the entry is re-pointed to h2 at t=100.
  engine.schedule_insert(
      make("flowEntry", {"S1", 5, *IpPrefix::parse("0.0.0.0/0"), "h2"}), 100);
  engine.schedule_insert(make("packet", {"S1", 2, Ipv4(9, 9, 9, 9)}), 200);
  engine.run();
  const auto delivered = engine.live_tuples("delivered");
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].location(), "h1");
  EXPECT_EQ(delivered[1].location(), "h2");
}

constexpr const char* kDerivedStateProgram = R"(
  table conf(3) keys(0, 1) base mutable.
  table ruleTab(3) derived keys(0, 1).
  table merged(3) derived keys(0, 1).
  rule d1 ruleTab(@N, K, V * 10) :- conf(@N, K, V).
  rule d2 merged(@N, K, V + 1) :- ruleTab(@N, K, V).
)";

TEST(Engine, DerivedChainsAndUnderiveCascade) {
  TraceObserver trace;
  Engine engine((parse_program(kDerivedStateProgram)));
  engine.add_observer(&trace);
  engine.schedule_insert(make("conf", {"n1", "k", 4}), 0);
  engine.run();
  EXPECT_TRUE(engine.is_live(make("ruleTab", {"n1", "k", 40})));
  EXPECT_TRUE(engine.is_live(make("merged", {"n1", "k", 41})));

  // Deleting the base fact must cascade through both derived layers.
  engine.schedule_delete(make("conf", {"n1", "k", 4}), 100);
  engine.run();
  EXPECT_FALSE(engine.is_live(make("ruleTab", {"n1", "k", 40})));
  EXPECT_FALSE(engine.is_live(make("merged", {"n1", "k", 41})));
  EXPECT_EQ(engine.stats().underivations, 2u);

  // Temporal history survives the deletion.
  EXPECT_TRUE(engine.existed_at(make("merged", {"n1", "k", 41}), 50));
}

TEST(Engine, UpsertOfBaseRederivesDownstream) {
  Engine engine((parse_program(kDerivedStateProgram)));
  engine.schedule_insert(make("conf", {"n1", "k", 4}), 0);
  engine.schedule_insert(make("conf", {"n1", "k", 5}), 100);  // upsert
  engine.run();
  EXPECT_FALSE(engine.is_live(make("merged", {"n1", "k", 41})));
  EXPECT_TRUE(engine.is_live(make("merged", {"n1", "k", 51})));
}

constexpr const char* kJoinProgram = R"(
  table a(2) base.
  table b(3) base.
  table joined(3) derived.
  rule j1 joined(@N, X, Y) :- a(@N, X), b(@N, X, Y).
)";

TEST(Engine, JoinTriggersFromEitherSide) {
  Engine engine((parse_program(kJoinProgram)));
  // a arrives first, then b.
  engine.schedule_insert(make("a", {"n", 1}), 0);
  engine.schedule_insert(make("b", {"n", 1, 10}), 5);
  // b arrives first, then a.
  engine.schedule_insert(make("b", {"n", 2, 20}), 10);
  engine.schedule_insert(make("a", {"n", 2}), 15);
  // Non-matching join keys produce nothing.
  engine.schedule_insert(make("a", {"n", 3}), 20);
  engine.schedule_insert(make("b", {"n", 4, 40}), 25);
  engine.run();
  const auto joined = engine.live_tuples("joined");
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_TRUE(engine.is_live(make("joined", {"n", 1, 10})));
  EXPECT_TRUE(engine.is_live(make("joined", {"n", 2, 20})));
}

TEST(Engine, MultipleSupportsSurviveSingleRetraction) {
  Engine engine((parse_program(kJoinProgram)));
  // joined(n,1,10) has two derivations: via b(n,1,10) existing and also the
  // duplicate insert of a. Here: two b-tuples CANNOT give same head; instead
  // give the head two supports by two a-inserts? a is keyed on full tuple, so
  // re-inserting is a no-op. Use two different b tuples that yield the same
  // head: impossible with distinct Y. So: two rules would be needed; instead
  // verify support bookkeeping across displacement.
  engine.schedule_insert(make("a", {"n", 1}), 0);
  engine.schedule_insert(make("b", {"n", 1, 10}), 5);
  engine.run();
  EXPECT_TRUE(engine.is_live(make("joined", {"n", 1, 10})));
  engine.schedule_delete(make("b", {"n", 1, 10}), 20);
  engine.run();
  EXPECT_FALSE(engine.is_live(make("joined", {"n", 1, 10})));
}

TEST(Engine, DeterministicStatsAcrossRuns) {
  auto run_once = [] {
    Engine engine = make_forwarding_engine();
    const auto any = *IpPrefix::parse("0.0.0.0/0");
    engine.schedule_insert(make("flowEntry", {"S1", 1, any, "S2x"}), 0);
    engine.schedule_insert(make("flowEntry", {"S2x", 1, any, "h1"}), 0);
    for (int i = 0; i < 50; ++i) {
      engine.schedule_insert(
          make("packet", {"S1", i, Ipv4(10, 0, 0, static_cast<uint8_t>(i))}),
          10 + i);
    }
    engine.run();
    return engine.stats();
  };
  const auto s1 = run_once();
  const auto s2 = run_once();
  EXPECT_EQ(s1.derivations, s2.derivations);
  EXPECT_EQ(s1.events_processed, s2.events_processed);
  EXPECT_EQ(s1.remote_messages, s2.remote_messages);
}

TEST(Engine, ResetStatsZeroesFacadeAndRegistry) {
  Engine engine = make_forwarding_engine();
  const auto any = *IpPrefix::parse("0.0.0.0/0");
  engine.schedule_insert(make("flowEntry", {"S1", 1, any, "S2x"}), 0);
  engine.schedule_insert(make("flowEntry", {"S2x", 1, any, "h1"}), 0);
  for (int i = 0; i < 10; ++i) {
    engine.schedule_insert(
        make("packet", {"S1", i, Ipv4(10, 0, 0, static_cast<uint8_t>(i))}),
        10 + i);
  }
  engine.run();
  const auto before = engine.stats();
  EXPECT_GT(before.derivations, 0u);
  EXPECT_GT(before.events_processed, 0u);

  engine.reset_stats();
  EXPECT_EQ(engine.stats().derivations, 0u);
  EXPECT_EQ(engine.stats().events_processed, 0u);
  EXPECT_EQ(engine.metrics().counter("dp.runtime.derivations").value(), 0u);
  EXPECT_EQ(engine.metrics().counter("dp.runtime.events_processed").value(),
            0u);

  // Counting resumes from zero: the next run reports only post-reset work,
  // and the registry facade agrees with the Stats struct.
  engine.schedule_insert(
      make("packet", {"S1", 99, Ipv4(10, 0, 0, 99)}), 100);
  engine.run();
  const auto after = engine.stats();
  EXPECT_GT(after.events_processed, 0u);
  EXPECT_LT(after.events_processed, before.events_processed);
  EXPECT_EQ(engine.metrics().counter("dp.runtime.events_processed").value(),
            after.events_processed);
  EXPECT_EQ(engine.metrics().counter("dp.runtime.derivations").value(),
            after.derivations);
}

TEST(Engine, RejectsBadSchedules) {
  Engine engine = make_forwarding_engine();
  // Derived table cannot be inserted externally.
  EXPECT_THROW(engine.schedule_insert(make("delivered", {"h1", 1, 2}), 0),
               ProgramError);
  // Unknown table.
  EXPECT_THROW(engine.schedule_insert(make("nope", {"h1"}), 0), ProgramError);
  // Arity mismatch.
  EXPECT_THROW(engine.schedule_insert(make("packet", {"S1", 1}), 0),
               ProgramError);
  // Event tuples cannot be deleted.
  EXPECT_THROW(
      engine.schedule_delete(make("packet", {"S1", 1, Ipv4(1, 1, 1, 1)}), 0),
      ProgramError);
  // Location must be a string.
  EXPECT_THROW(
      engine.schedule_insert(make("packet", {1, 1, Ipv4(1, 1, 1, 1)}), 0),
      ProgramError);
}

TEST(Engine, RunUntilAdvancesPartially) {
  Engine engine = make_forwarding_engine();
  engine.schedule_insert(
      make("flowEntry", {"S1", 1, *IpPrefix::parse("0.0.0.0/0"), "h1"}), 0);
  engine.schedule_insert(make("packet", {"S1", 1, Ipv4(1, 1, 1, 1)}), 100);
  engine.run_until(50);
  EXPECT_TRUE(engine.live_tuples("delivered").empty());
  engine.run();
  EXPECT_EQ(engine.live_tuples("delivered").size(), 1u);
}

TEST(Engine, ObserverSeesTriggerTuple) {
  TraceObserver trace;
  Engine engine((parse_program(kJoinProgram)));
  engine.add_observer(&trace);
  engine.schedule_insert(make("a", {"n", 1}), 0);
  engine.schedule_insert(make("b", {"n", 1, 10}), 5);
  engine.run();
  // The join was triggered by the b tuple (it appeared last).
  bool found = false;
  for (const std::string& line : trace.log) {
    if (line.find("D[j1]") != std::string::npos) {
      EXPECT_NE(line.find("trig=b(@n, 1, 10)"), std::string::npos) << line;
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dp
