// Tests for the section 4.9 extensions and tooling: ground-tuple parsing,
// the text event-log format, delta minimization, automatic reference
// selection, the DNS substrate, and the CLI debugger.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "diffprov/reference.h"
#include "dns/dns.h"
#include "ndlog/parser.h"
#include "sdn/scenario.h"
#include "tools/cli.h"

namespace dp {
namespace {

// ----------------------------------------------------------- parse_tuple --

TEST(ParseTuple, RoundTripsRenderedTuples) {
  const Tuple original("flowEntry", {Value("sw2"), Value(100),
                                     Value(*IpPrefix::parse("4.3.2.0/24")),
                                     Value("sw6")});
  EXPECT_EQ(parse_tuple(original.to_string()), original);
}

TEST(ParseTuple, AcceptsAllLiteralKinds) {
  const Tuple t = parse_tuple(
      R"(mix(@node, -3, 2.5, "text", 1.2.3.4, 10.0.0.0/8))");
  EXPECT_EQ(t.table(), "mix");
  EXPECT_EQ(t.location(), "node");
  EXPECT_EQ(t.at(1).as_int(), -3);
  EXPECT_DOUBLE_EQ(t.at(2).as_double(), 2.5);
  EXPECT_EQ(t.at(3).as_string(), "text");
  EXPECT_EQ(t.at(4).as_ip().to_string(), "1.2.3.4");
  EXPECT_EQ(t.at(5).as_prefix().to_string(), "10.0.0.0/8");
}

TEST(ParseTuple, OptionalAtAndBareLocation) {
  EXPECT_EQ(parse_tuple("a(n, 1)"), parse_tuple("a(@n, 1)"));
  EXPECT_EQ(parse_tuple(R"(a("n", 1))"), parse_tuple("a(@n, 1)"));
}

TEST(ParseTuple, RejectsMalformedInput) {
  EXPECT_THROW(parse_tuple("a(@n, X)"), ParseError);  // variable
  EXPECT_THROW(parse_tuple("a(@n, 1"), ParseError);   // unterminated
  EXPECT_THROW(parse_tuple("a(@n, 1) extra"), ParseError);
  EXPECT_THROW(parse_tuple("(@n)"), ParseError);
}

// ------------------------------------------------------- text event logs --

TEST(EventLogText, RoundTrips) {
  EventLog log;
  log.append_insert(parse_tuple("cfg(@n, \"k\", 7)"), 0);
  log.append_delete(parse_tuple("cfg(@n, \"k\", 7)"), 50);
  log.append_insert(parse_tuple("pkt(@sw1, 1, 4.3.2.1)"), 100);
  const EventLog parsed = EventLog::from_text(log.to_text());
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed.records()[i], log.records()[i]);
  }
}

TEST(EventLogText, SkipsCommentsAndBlankLines) {
  const EventLog log = EventLog::from_text(R"(
    # configuration
    + cfg(@n, "k", 7) @ 0

    + pkt(@sw1, 1, 4.3.2.1) @ 100   # the good packet
  )");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[1].time, 100);
}

TEST(EventLogText, ReportsLineNumbersOnErrors) {
  try {
    EventLog::from_text("+ a(@n) @ 1\nbogus line\n");
    FAIL() << "expected an error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// ------------------------------------------------------------- minimize --

TEST(Minimize, KeepsBothNecessaryChangesInSdn4) {
  const sdn::Scenario s = sdn::sdn4();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.changes.size(), 2u);
  const DiffProvResult minimized = diffprov.minimize_delta(*good, result);
  // Both faults are genuine: nothing can be dropped.
  EXPECT_EQ(minimized.changes.size(), 2u);
  EXPECT_TRUE(minimized.ok());
}

TEST(Minimize, DropsARedundantInjectedChange) {
  // Inflate a successful SDN1 result with a no-op change (an unrelated
  // policy tweak): minimize_delta must discard it and keep the real fix.
  const sdn::Scenario s = sdn::sdn1();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.changes.size(), 1u);

  ChangeRecord extra;
  extra.after = parse_tuple(
      R"(policyRoute(@ctl, "sw4", 7, 99.0.0.0/8, "sw5"))");
  extra.note = "injected redundancy";
  extra.op_indices.push_back(result.delta.size());
  result.delta.push_back(
      {DeltaOp::Kind::kInsert, *extra.after, result.bad_seed_time - 1});
  result.changes.push_back(std::move(extra));

  const DiffProvResult minimized = diffprov.minimize_delta(*good, result);
  ASSERT_EQ(minimized.changes.size(), 1u) << minimized.to_string();
  EXPECT_NE(minimized.changes[0].to_string().find("4.3.2.0/23"),
            std::string::npos);
  EXPECT_NE(minimized.message.find("minimized from 2 to 1"),
            std::string::npos);
}

TEST(Minimize, DeltaAlignsRejectsEmptyDelta) {
  const sdn::Scenario s = sdn::sdn1();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(diffprov.delta_aligns(*good, result.delta, result.repairs,
                                    *result.bad_seed));
  EXPECT_FALSE(
      diffprov.delta_aligns(*good, {}, result.repairs, *result.bad_seed));
}

// ------------------------------------------------- reference  selection --

TEST(Reference, SimilarityOrdersSensibly) {
  const Tuple bad = parse_tuple("delivered(@w2, 2, 4.3.3.1, 8.8.1.1)");
  const Tuple close = parse_tuple("delivered(@w1, 1, 4.3.2.1, 8.8.1.1)");
  const Tuple far = parse_tuple("delivered(@d1, 900, 200.1.2.3, 9.9.9.9)");
  EXPECT_GT(tuple_similarity(bad, close), tuple_similarity(bad, far));
  EXPECT_DOUBLE_EQ(tuple_similarity(bad, bad), 1.0);
  EXPECT_DOUBLE_EQ(
      tuple_similarity(bad, parse_tuple("dropped(@w2, 2, 4.3.3.1, 8.8.1.1)")),
      0.0);
}

TEST(Reference, SuggestsAndDiagnosesSdn1Automatically) {
  const sdn::Scenario s = sdn::sdn1();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto candidates = suggest_references(*run.graph, s.bad_event, 4);
  ASSERT_FALSE(candidates.empty());
  // The most similar delivered event is the good packet's delivery (or its
  // DPI mirror -- both share 23 prefix bits with the bad source).
  EXPECT_EQ(candidates[0].event.table(), "delivered");

  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const AutoDiagnosis result =
      diagnose_with_auto_reference(diffprov, *run.graph, s.bad_event);
  ASSERT_TRUE(result.result.ok()) << result.result.to_string();
  ASSERT_TRUE(result.reference.has_value());
  EXPECT_NE(result.result.changes[0].to_string().find("4.3.2.0/23"),
            std::string::npos);
}

TEST(Reference, ReportsFailureWhenNoCandidateWorks) {
  // A log with a single event has no candidate references at all.
  Program program = parse_program(R"(
    table a(2) base immutable event.
    table b(2) derived.
    rule r1 b(@N, X) :- a(@N, X).
  )");
  EventLog log;
  log.append_insert(parse_tuple("a(@n, 1)"), 10);
  LogReplayProvider provider(program, Topology{}, log);
  const BadRun run = provider.replay_bad({});
  DiffProv diffprov(program, provider);
  const AutoDiagnosis result = diagnose_with_auto_reference(
      diffprov, *run.graph, parse_tuple("b(@n, 1)"));
  EXPECT_FALSE(result.result.ok());
  EXPECT_FALSE(result.reference.has_value());
}

// ------------------------------------------------------------------ dns --

TEST(Dns, StaleRecordDiagnosedFromThePast) {
  const dns::Scenario s = dns::stale_record();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  ASSERT_TRUE(good.has_value());
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  ASSERT_TRUE(result.ok()) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_NE(result.changes[0].to_string().find(s.expected_root_cause),
            std::string::npos)
      << result.to_string();
}

TEST(Dns, StaleReplicaAlignsViaTheUpstream) {
  const dns::Scenario s = dns::stale_replica();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  ASSERT_TRUE(good.has_value());
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  ASSERT_TRUE(result.ok()) << result.to_string();
  // The returned change satisfies Definition 1 (it aligns the trees) even
  // though an operator might have preferred fixing srvA's zone data -- the
  // paper's section 4.7 "no guarantee the output matches the operator's
  // intent".
  EXPECT_NE(result.changes[0].to_string().find(s.expected_root_cause),
            std::string::npos)
      << result.to_string();
}

// ------------------------------------------------------------------ cli --

int run_cli(const std::vector<std::string>& args, std::string* out_text,
            std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::run(args, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

TEST(Cli, DiagnosesBuiltinScenario) {
  std::string out;
  const int rc = run_cli({"--scenario", "sdn1", "--good",
                          "delivered(@w1, 1, 4.3.2.1, 8.8.1.1)", "--bad",
                          "delivered(@w2, 2, 4.3.3.1, 8.8.1.1)"},
                         &out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("4.3.2.0/23"), std::string::npos);
}

TEST(Cli, AutoReferenceOverridesBuiltinDefault) {
  std::string out;
  const int rc = run_cli({"--scenario", "sdn1", "--auto-reference", "--bad",
                          "delivered(@w2, 2, 4.3.3.1, 8.8.1.1)"},
                         &out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("auto-selected reference"), std::string::npos);
}

TEST(Cli, FileBasedProgramAndLog) {
  // Write the quickstart system to disk and diagnose it through the file
  // path, exercising parse_program + EventLog::from_text end to end.
  const std::string dir = ::testing::TempDir();
  const std::string program_path = dir + "/toy.ndlog";
  const std::string log_path = dir + "/toy.log";
  {
    std::ofstream program(program_path);
    program << R"(
      table request(3) base immutable event.
      table setting(2) base mutable keys(0).
      table reply(3) derived.
      rule r1 reply(@Client, Id, Value * 2 + 1) :-
          request(@Server, Client, Id), setting(@Server, Value).
    )";
    std::ofstream log(log_path);
    log << R"(
      + setting(@srv, 20) @ 0
      + request(@srv, "alice", 1) @ 100
      + setting(@srv, 99) @ 150
      + request(@srv, "bob", 2) @ 200
    )";
  }
  std::string out;
  const int rc = run_cli({"--program", program_path, "--log", log_path,
                          "--good", R"(reply(@alice, 1, 41))", "--bad",
                          R"(reply(@bob, 2, 199))"},
                         &out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("setting(@srv, 99) -> setting(@srv, 20)"),
            std::string::npos)
      << out;
}

TEST(Cli, UsageAndErrorPaths) {
  std::string out;
  std::string err;
  EXPECT_EQ(run_cli({}, &out, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(run_cli({"--scenario", "nope", "--bad", "a(@n)"}, &out, &err), 2);
  EXPECT_EQ(run_cli({"--help"}, &out, &err), 0);
  EXPECT_EQ(run_cli({"--list-scenarios"}, &out, &err), 0);
  EXPECT_NE(out.find("sdn1"), std::string::npos);
  // Missing reference.
  EXPECT_EQ(run_cli({"--scenario", "mr1-d", "--bad", "wordAt(@rd0, \"x\", "
                     "\"f\", 0, 0)"},
                    &out, &err),
            2);
  EXPECT_NE(err.find("no reference"), std::string::npos);
}

TEST(Cli, ShowTreeAndDot) {
  const std::string dot_path = ::testing::TempDir() + "/tree.dot";
  std::string out;
  const int rc =
      run_cli({"--scenario", "DNS-stale-record", "--good",
               R"(response(@c1, 1, "www.example.org", 93.184.216.34, 2))",
               "--bad",
               R"(response(@c1, 2, "www.example.org", 10.0.0.99, 1))",
               "--show-tree", "bad", "--dot", dot_path},
              &out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("EXIST response"), std::string::npos);
  std::ifstream dot(dot_path);
  std::stringstream dot_text;
  dot_text << dot.rdbuf();
  EXPECT_NE(dot_text.str().find("digraph provenance"), std::string::npos);
}

}  // namespace
}  // namespace dp
