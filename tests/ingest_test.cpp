// Tests for the streaming-ingest subsystem (src/ingest): byte-identity of
// live-stream diagnoses with the one-shot CLI's batch replay (the contract:
// a diagnosis against the always-current graph equals a cold replay of the
// same prefix, bit for bit), segment/checkpoint wire hardening in the
// serialization_test style (randomized round-trips, every truncation offset
// a clean torn tail), tier maintenance (compaction and epoch-bounded
// truncation never change answers), and the service-level wiring: stream
// queries, the ingest_snapshot_us explain phase, NDJSON ingest ops, and the
// TSan target where appenders, queries, and maintenance race on one stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ingest/manager.h"
#include "ingest/segment.h"
#include "ingest/stream.h"
#include "ndlog/parser.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "service/diagnose.h"
#include "service/problem.h"
#include "service/protocol.h"
#include "service/service.h"
#include "tools/cli.h"
#include "util/rng.h"

namespace dp::ingest {
namespace {

constexpr const char* kAllScenarios[] = {
    "sdn1", "sdn2", "sdn3", "sdn4",
    "DNS-stale-record", "DNS-stale-replica", "mr1-d", "mr2-d"};

/// A built-in scenario with its log in arrival (time) order: scenario logs
/// group records by kind, but the stream's append contract is
/// watermark-monotone. The stable sort preserves batch replay's (time,
/// log-order) processing order, so diagnoses over the sorted log are
/// byte-identical to the authored scenario (the full-log tests below check
/// that against the CLI directly).
service::Problem scenario(const std::string& name) {
  std::ostringstream err;
  auto problem = service::builtin_scenario(name, err);
  EXPECT_TRUE(problem.has_value()) << err.str();
  std::vector<LogRecord> records = problem->log.records();
  std::stable_sort(
      records.begin(), records.end(),
      [](const LogRecord& a, const LogRecord& b) { return a.time < b.time; });
  EventLog sorted;
  for (const LogRecord& record : records) sorted.append(record);
  problem->log = std::move(sorted);
  return std::move(*problem);
}

service::DiagnoseSpec spec_for(const service::Problem& problem) {
  service::DiagnoseSpec spec;
  spec.good_event = problem.good_event;
  spec.bad_event = *problem.bad_event;
  return spec;
}

EventLog prefix_log(const EventLog& log, std::size_t n) {
  EventLog prefix;
  for (std::size_t i = 0; i < n && i < log.size(); ++i) {
    prefix.append(log.records()[i]);
  }
  return prefix;
}

/// The cold oracle: a one-shot diagnosis over `n` records of the scenario
/// log, exactly what the CLI would compute for the same prefix.
service::DiagnoseOutcome cold_answer(const service::Problem& problem,
                                     std::size_t n) {
  service::Problem prefix{problem.program, problem.topology,
                          prefix_log(problem.log, n), problem.good_event,
                          problem.bad_event};
  return diagnose_problem(prefix, spec_for(problem), ReplayOptions{});
}

void expect_same_answer(const service::DiagnoseOutcome& live,
                        const service::DiagnoseOutcome& cold,
                        const std::string& what) {
  EXPECT_EQ(live.out, cold.out) << what;
  EXPECT_EQ(live.err, cold.err) << what;
  EXPECT_EQ(live.exit_code, cold.exit_code) << what;
}

/// Diagnoses against the stream's always-current run and checks the bytes
/// against a cold replay of the same prefix.
void check_cut(IngestStream& stream, const service::Problem& problem,
               std::size_t n, const std::string& what) {
  auto run = stream.ensure_current();
  service::Problem live_problem{stream.program(), stream.topology(),
                                stream.log(), stream.good_event(),
                                stream.bad_event()};
  const auto live =
      diagnose_problem(live_problem, spec_for(problem), ReplayOptions{}, run);
  expect_same_answer(live, cold_answer(problem, n), what);
}

// ------------------------------------------------------- byte identity --

TEST(IngestStream, ByteIdenticalToBatchReplayAtEveryCut) {
  for (const char* name : kAllScenarios) {
    const service::Problem problem = scenario(name);
    obs::MetricsRegistry registry;
    IngestOptions ingest;
    ingest.epoch_events = 5;  // several epoch boundaries per scenario
    IngestStream stream(name, problem.program, problem.topology,
                        problem.good_event, problem.bad_event, ReplayOptions{},
                        ingest, registry);

    // Cuts: the first epoch boundary, a mid-epoch point, and the full log.
    const std::size_t total = problem.log.size();
    ASSERT_GT(total, 0u) << name;
    std::vector<std::size_t> cuts = {std::min<std::size_t>(5, total),
                                     total - total / 3, total};
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::size_t fed = 0;
    std::uint64_t last_hash = stream.content_hash();
    for (const std::size_t cut : cuts) {
      for (; fed < cut; ++fed) stream.append(problem.log.records()[fed]);
      EXPECT_NE(stream.content_hash(), last_hash) << name;
      last_hash = stream.content_hash();
      check_cut(stream, problem, cut,
                std::string(name) + " cut@" + std::to_string(cut));
    }
    const IngestStreamStats stats = stream.stats();
    EXPECT_EQ(stats.events, total);
    EXPECT_EQ(stats.snapshots, cuts.size());
    EXPECT_EQ(stats.watermark, problem.log.records().back().time);
  }
}

TEST(IngestStream, SameTimeAppendRunsStraddlingEpochSealsStayIdentical) {
  // Live-tap appends that share a timestamp are left queued (feed_live only
  // advances the engine when it is behind) and drain through the engine's
  // batched execution path at the next snapshot. Make those runs straddle
  // epoch seals -- and a mid-run checkpoint capture -- and check every cut
  // is still byte-identical to a cold batch replay of the same prefix.
  service::Problem problem;
  problem.program = parse_program(R"(
    table src(2) keys(0, 1) base mutable.
    table hop(3) keys(0, 1) base mutable.
    table reach(3) derived event.
    rule r reach(@N, K, V) :- src(@N, K), hop(@N, K, V).
  )");
  EventLog log;
  for (int k = 0; k < 10; ++k) {  // one same-time run of 10 hops
    log.append_insert(Tuple("hop", {Value("n1"), Value(k), Value(k + 100)}),
                      1);
  }
  for (int k = 0; k < 10; ++k) {  // a second same-time run of 10 srcs
    log.append_insert(Tuple("src", {Value("n1"), Value(k)}), 2);
  }
  problem.log = log;
  problem.good_event = Tuple("reach", {Value("n1"), Value(0), Value(100)});
  problem.bad_event = Tuple("reach", {Value("n1"), Value(3), Value(103)});

  obs::MetricsRegistry registry;
  IngestOptions ingest;
  ingest.epoch_events = 4;           // seals land mid same-time run
  ingest.checkpoint_every_epochs = 1;  // capture with a batch still queued
  IngestStream stream("straddle", problem.program, problem.topology,
                      problem.good_event, problem.bad_event, ReplayOptions{},
                      ingest, registry);
  std::size_t fed = 0;
  for (const std::size_t cut : {std::size_t{7}, std::size_t{13}, log.size()}) {
    for (; fed < cut; ++fed) stream.append(log.records()[fed]);
    check_cut(stream, problem, cut, "straddle cut@" + std::to_string(cut));
  }
  EXPECT_GE(stream.stats().sealed_epochs, 4u);
  EXPECT_GE(stream.stats().checkpoints, 1u);
}

TEST(IngestStream, CompactionNeverChangesAnswers) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  IngestOptions ingest;
  ingest.epoch_events = 2;  // many small epochs -> segments to merge
  ingest.checkpoint_every_epochs = 2;
  ingest.compact_watermark = 2;
  ingest.retain_epochs = 1000;  // retention never truncates; isolate merging
  IngestStream stream("sdn1", problem.program, problem.topology,
                      problem.good_event, problem.bad_event, ReplayOptions{},
                      ingest, registry);
  for (const LogRecord& record : problem.log.records()) stream.append(record);
  stream.seal();
  const std::uint32_t sealed = stream.stats().sealed_epochs;
  ASSERT_GT(sealed, 2u);

  stream.maintain(/*under_pressure=*/false);
  const IngestStreamStats stats = stream.stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.segments_compacted, 0u);
  EXPECT_EQ(stats.segments, ingest.compact_watermark);
  EXPECT_EQ(stats.sealed_epochs, sealed) << "merging drops no epochs";
  std::size_t sealed_records = 0;
  for (const auto& segment : stream.segments()) {
    sealed_records += segment->size();
  }
  EXPECT_EQ(sealed_records + stats.open_records, problem.log.size());
  check_cut(stream, problem, problem.log.size(), "after compaction");
}

TEST(IngestStream, PressureTruncationNeverChangesAnswers) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  IngestOptions ingest;
  ingest.epoch_events = 2;
  ingest.checkpoint_every_epochs = 2;
  ingest.compact_watermark = 0;  // no merging; isolate truncation
  ingest.retain_epochs = 1;
  IngestStream stream("sdn1", problem.program, problem.topology,
                      problem.good_event, problem.bad_event, ReplayOptions{},
                      ingest, registry);
  for (const LogRecord& record : problem.log.records()) stream.append(record);
  stream.seal();

  // Memory pressure: every checkpoint-covered segment goes; answers hold
  // because the full in-memory prefix is retained.
  stream.maintain(/*under_pressure=*/true);
  const IngestStreamStats stats = stream.stats();
  EXPECT_GT(stats.truncated_segments, 0u);
  EXPECT_GT(stats.truncated_bytes, 0u);
  check_cut(stream, problem, problem.log.size(), "after pressure truncation");
  EXPECT_EQ(stream.log().size(), problem.log.size())
      << "truncation must only drop storage-tier segments";

  // The remaining segments still form an adjacent epoch chain (truncation
  // removes only a prefix), so bootstrap and compaction stay well-formed.
  for (std::size_t i = 1; i < stream.segments().size(); ++i) {
    EXPECT_EQ(stream.segments()[i - 1]->last_epoch() + 1,
              stream.segments()[i]->first_epoch());
  }
}

TEST(IngestStream, StaleAppendFallsBackToOneRebuild) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  IngestStream stream("sdn1", problem.program, problem.topology,
                      problem.good_event, problem.bad_event, ReplayOptions{},
                      IngestOptions{}, registry);
  const auto& records = problem.log.records();
  const std::size_t half = records.size() / 2;
  for (std::size_t i = 0; i < half; ++i) stream.append(records[i]);

  bool rebuilt = true;
  stream.ensure_current(&rebuilt);
  EXPECT_FALSE(rebuilt) << "incremental feed needs no rebuild";

  // The snapshot quiesced the engine at the watermark; appending another
  // record at that same time lands at-or-before the horizon and must flag
  // the live engine stale instead of silently diverging.
  LogRecord stale = records[half];
  stale.time = stream.watermark();
  stream.append(stale);
  for (std::size_t i = half + 1; i < records.size(); ++i) {
    LogRecord record = records[i];
    record.time = std::max(record.time, stale.time);
    stream.append(record);
  }

  stream.ensure_current(&rebuilt);
  EXPECT_TRUE(rebuilt) << "post-quiescence append at the horizon rebuilds";
  EXPECT_EQ(stream.stats().live_rebuilds, 1u);

  // And the rebuilt answer still equals a cold replay of the same log.
  service::Problem live_problem{stream.program(), stream.topology(),
                                stream.log(), stream.good_event(),
                                stream.bad_event()};
  const auto live = diagnose_problem(live_problem, spec_for(problem),
                                     ReplayOptions{}, stream.ensure_current());
  const auto cold =
      diagnose_problem(live_problem, spec_for(problem), ReplayOptions{});
  expect_same_answer(live, cold, "after rebuild");
  EXPECT_EQ(stream.stats().live_rebuilds, 1u) << "rebuild repairs, once";
}

TEST(IngestStream, RejectsOutOfOrderAndHalfBatches) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  IngestStream stream("sdn1", problem.program, problem.topology,
                      problem.good_event, problem.bad_event, ReplayOptions{},
                      IngestOptions{}, registry);
  const std::string text = problem.log.to_text();
  const std::size_t appended = stream.append_text(text);
  EXPECT_EQ(appended, problem.log.size());
  const LogicalTime watermark = stream.watermark();

  LogRecord behind = problem.log.records().front();
  behind.time = watermark - 1;
  EXPECT_THROW(stream.append(behind), std::exception);

  // A batch is all-or-nothing: a parse error (or an out-of-order record) in
  // line 2 must not apply line 1.
  const std::string head =
      "+ " + problem.log.records().back().tuple().to_string() + " @ " +
      std::to_string(watermark + 1) + "\n";
  const std::size_t before = stream.log().size();
  EXPECT_THROW(stream.append_text(head + "not an event line\n"),
               std::exception);
  EXPECT_THROW(stream.append_text(
                   head + "+ " +
                   problem.log.records().front().tuple().to_string() + " @ 0\n"),
               std::exception);
  EXPECT_EQ(stream.log().size(), before);
  EXPECT_EQ(stream.watermark(), watermark);
}

// -------------------------------------------- checkpoint + bootstrap --

std::vector<std::string> base_table_rows(const Engine& engine,
                                         const Program& program) {
  std::vector<std::string> rows;
  for (const auto& [name, decl] : program.tables()) {
    if (decl.kind != TupleKind::kBase || decl.is_event()) continue;
    for (const Tuple& tuple : engine.live_tuples(name)) {
      rows.push_back(name + ":" + tuple.to_string());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(IngestStream, BootstrapFromCheckpointMatchesBatchBaseState) {
  const service::Problem problem = scenario("sdn2");
  obs::MetricsRegistry registry;
  IngestOptions ingest;
  ingest.epoch_events = 3;
  ingest.checkpoint_every_epochs = 2;
  IngestStream stream("sdn2", problem.program, problem.topology,
                      problem.good_event, problem.bad_event, ReplayOptions{},
                      ingest, registry);
  for (const LogRecord& record : problem.log.records()) stream.append(record);
  stream.seal();
  ASSERT_GT(stream.stats().checkpoints, 0u);

  // The bootstrap contract is state reconstruction (the warm-session
  // checkpoint tier's contract): checkpoint + segment suffix + open epoch
  // must land on the same base state as replaying the whole history.
  const std::unique_ptr<Engine> booted = stream.bootstrap_engine();
  ReplayResult batch =
      replay(problem.program, problem.topology, problem.log, {}, {});
  EXPECT_EQ(base_table_rows(*booted, problem.program),
            base_table_rows(*batch.engine, problem.program));
}

TEST(IngestStream, WriteBootstrapRoundTripsThroughStreamFile) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  IngestOptions ingest;
  ingest.epoch_events = 4;
  ingest.checkpoint_every_epochs = 2;
  IngestStream stream("sdn1", problem.program, problem.topology,
                      problem.good_event, problem.bad_event, ReplayOptions{},
                      ingest, registry);
  for (const LogRecord& record : problem.log.records()) stream.append(record);
  stream.seal();

  std::ostringstream out;
  stream.write_bootstrap(out);
  const std::string bytes = out.str();

  std::istringstream in(bytes);
  const StreamFile file = read_stream_file(in);
  EXPECT_TRUE(file.tail_error.empty()) << file.tail_error;
  EXPECT_EQ(file.dropped_bytes, 0u);
  EXPECT_TRUE(file.checkpoint.has_value());
  ASSERT_EQ(file.segments.size(), stream.segments().size());
  std::size_t sealed_records = 0;
  for (std::size_t i = 0; i < file.segments.size(); ++i) {
    EXPECT_EQ(file.segments[i].log().records(),
              stream.segments()[i]->log().records());
    sealed_records += file.segments[i].size();
  }
  EXPECT_EQ(sealed_records + stream.stats().open_records, stream.log().size());

  // A torn tail (any truncation) must fall back to the sealed prefix, never
  // throw: the stream survives a crash mid-write.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::istringstream torn(bytes.substr(0, len));
    const StreamFile partial = read_stream_file(torn);
    EXPECT_LE(partial.segments.size(), file.segments.size());
    if (len < bytes.size()) {
      EXPECT_TRUE(len == 0 || !partial.tail_error.empty() ||
                  partial.segments.size() < file.segments.size() ||
                  !partial.checkpoint.has_value() ||
                  partial.segments.size() == file.segments.size());
    }
  }
}

// ------------------------------------------- segment wire hardening --

Tuple random_tuple(Rng& rng) {
  static const char* kTables[] = {"alpha", "beta", "gamma"};
  std::vector<Value> values;
  values.emplace_back("n" + std::to_string(rng.next_below(4)));  // location
  const std::size_t arity = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < arity; ++i) {
    switch (rng.next_below(3)) {
      case 0:
        values.emplace_back(static_cast<std::int64_t>(rng.next_u64() % 1000));
        break;
      case 1:
        values.emplace_back("s" + std::to_string(rng.next_below(100)));
        break;
      default:
        values.emplace_back(Ipv4(static_cast<std::uint32_t>(rng.next_u64())));
        break;
    }
  }
  return Tuple(kTables[rng.next_below(3)], std::move(values));
}

EventLog random_log(Rng& rng, std::size_t min_records = 1) {
  EventLog log;
  const std::size_t records = min_records + rng.next_below(20);
  LogicalTime t = static_cast<LogicalTime>(rng.next_below(10));
  for (std::size_t i = 0; i < records; ++i) {
    t += static_cast<LogicalTime>(rng.next_below(5));
    if (rng.next_below(4) == 0) {
      log.append_delete(random_tuple(rng), t);
    } else {
      log.append_insert(random_tuple(rng), t);
    }
  }
  return log;
}

TEST(LogSegment, RandomizedRoundTrip) {
  Rng rng(0xd1f5);
  for (int iter = 0; iter < 40; ++iter) {
    const auto first = static_cast<std::uint32_t>(rng.next_below(100));
    const auto span = static_cast<std::uint32_t>(rng.next_below(4));
    const LogSegment segment(first, first + span, random_log(rng));

    std::ostringstream out;
    segment.serialize(out);
    std::istringstream in(out.str());
    const LogSegment back = LogSegment::deserialize(in);

    EXPECT_EQ(back.first_epoch(), segment.first_epoch());
    EXPECT_EQ(back.last_epoch(), segment.last_epoch());
    EXPECT_EQ(back.first_time(), segment.first_time());
    EXPECT_EQ(back.last_time(), segment.last_time());
    EXPECT_EQ(back.log().records(), segment.log().records());
    EXPECT_EQ(back.byte_size(), segment.byte_size());
  }
}

TEST(LogSegment, MergeOfASplitLogSerializesByteEqualToTheUnsplitLog) {
  Rng rng(0xbeef);
  for (int iter = 0; iter < 25; ++iter) {
    const EventLog full = random_log(rng, /*min_records=*/2);
    const std::size_t split = 1 + rng.next_below(full.size() - 1);
    EventLog a_log = prefix_log(full, split);
    EventLog b_log;
    for (std::size_t i = split; i < full.size(); ++i) {
      b_log.append(full.records()[i]);
    }
    const LogSegment a(0, 0, std::move(a_log));
    const LogSegment b(1, 1, std::move(b_log));
    const LogSegment merged = LogSegment::merge(a, b);
    EXPECT_EQ(merged.epochs(), 2u);

    std::ostringstream merged_bytes, unsplit_bytes;
    merged.serialize(merged_bytes);
    LogSegment(0, 1, full).serialize(unsplit_bytes);
    EXPECT_EQ(merged_bytes.str(), unsplit_bytes.str());
  }

  // Non-adjacent epoch ranges must be rejected, not silently glued.
  Rng rng2(0x77);
  const LogSegment a(0, 0, random_log(rng2));
  const LogSegment gap(2, 2, random_log(rng2));
  EXPECT_THROW(LogSegment::merge(a, gap), std::invalid_argument);
}

TEST(LogSegment, EveryTruncationOffsetFailsWithAByteOffset) {
  Rng rng(0x5eed);
  const LogSegment segment(3, 4, random_log(rng, /*min_records=*/3));
  std::ostringstream out;
  segment.serialize(out);
  const std::string bytes = out.str();

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    try {
      LogSegment::deserialize(in);
      FAIL() << "truncation at " << len << " of " << bytes.size()
             << " must not decode";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
          << "offsetless error at len " << len << ": " << e.what();
    }
  }

  // A flipped payload byte trips the checksum (pick one well inside the
  // payload, past the fixed header).
  std::string corrupt = bytes;
  corrupt[bytes.size() - 12] ^= 0x40;
  std::istringstream in(corrupt);
  EXPECT_THROW(LogSegment::deserialize(in), std::runtime_error);
}

TEST(StreamFile, TornTailFallsBackToTheSealedPrefix) {
  Rng rng(0xfee1);
  const LogSegment first(0, 0, random_log(rng, 2));
  const LogSegment second(1, 1, random_log(rng, 2));
  std::ostringstream out;
  first.serialize(out);
  second.serialize(out);
  const std::string bytes = out.str();
  std::ostringstream first_only_out;
  first.serialize(first_only_out);
  const std::size_t first_len = first_only_out.str().size();

  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    const StreamFile file = read_stream_file(in);  // must never throw
    const std::size_t expect_sealed =
        (len >= bytes.size()) ? 2 : (len >= first_len ? 1 : 0);
    EXPECT_EQ(file.segments.size(), expect_sealed) << "at len " << len;
    if (expect_sealed < 2 && len > first_len) {
      EXPECT_FALSE(file.tail_error.empty()) << "at len " << len;
      EXPECT_GT(file.dropped_bytes, 0u) << "at len " << len;
    }
    if (expect_sealed == 2) {
      EXPECT_TRUE(file.tail_error.empty());
    }
  }
}

// ------------------------------------------------- service wiring --

service::QueryStatus wait_done(service::DiagnosisService& service,
                               const service::SubmitOutcome& s) {
  EXPECT_TRUE(s.ok()) << s.error;
  auto status = service.wait(s.id);
  EXPECT_TRUE(status.has_value());
  return *status;
}

struct CliAnswer {
  int exit_code;
  std::string out;
  std::string err;
};

CliAnswer run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int exit_code = cli::run(args, out, err);
  return {exit_code, out.str(), err.str()};
}

TEST(IngestService, StreamQueriesAreByteIdenticalToTheCli) {
  const CliAnswer expected = run_cli({"--scenario", "sdn1"});
  const service::Problem problem = scenario("sdn1");

  obs::MetricsRegistry registry;
  service::ServiceConfig config;
  config.metrics = &registry;
  config.ingest.epoch_events = 6;
  service::DiagnosisService service(config);

  const service::IngestOutcome opened = service.open_stream("live", "sdn1");
  ASSERT_TRUE(opened.ok) << opened.error;
  EXPECT_EQ(opened.stream.events, 0u) << "streams open empty";

  // Feed in two halves with a diagnosis in between: the mid-stream answer
  // must match a cold run over the same prefix, the final one the full CLI.
  const std::string text = problem.log.to_text();
  std::vector<std::string> lines;
  std::istringstream split(text);
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  const std::size_t half = lines.size() / 2;
  std::string first_half, second_half;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    (i < half ? first_half : second_half) += lines[i] + "\n";
  }

  service::IngestOutcome fed = service.ingest("live", first_half);
  ASSERT_TRUE(fed.ok) << fed.error;
  EXPECT_EQ(fed.accepted, half);

  service::Query query;
  query.stream = "live";
  const service::QueryStatus mid = wait_done(service, service.submit(query));
  ASSERT_EQ(mid.state, service::QueryState::kDone);
  const auto cold_mid = cold_answer(problem, half);
  EXPECT_EQ(mid.result.out, cold_mid.out);
  EXPECT_EQ(mid.result.err, cold_mid.err);
  EXPECT_EQ(mid.result.exit_code, cold_mid.exit_code);

  fed = service.ingest("live", second_half, /*seal=*/true);
  ASSERT_TRUE(fed.ok) << fed.error;
  EXPECT_EQ(fed.stream.events, lines.size());
  EXPECT_EQ(fed.stream.open_records, 0u) << "seal closes the open epoch";

  const service::QueryStatus full = wait_done(service, service.submit(query));
  EXPECT_EQ(full.result.out, expected.out);
  EXPECT_EQ(full.result.err, expected.err);
  EXPECT_EQ(full.result.exit_code, expected.exit_code);
  EXPECT_FALSE(full.cache_hit) << "the prefix grew; the old key is stale";

  // Same prefix again: the content-hash cache key serves it without a run.
  const service::QueryStatus again = wait_done(service, service.submit(query));
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.result.out, expected.out);

  const service::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ingest_streams, 1u);
  EXPECT_EQ(stats.ingest_events, lines.size());
  ASSERT_EQ(stats.per_stream.size(), 1u);
  EXPECT_EQ(stats.per_stream[0].first, "live");
  EXPECT_GT(stats.ingest_resident_bytes, 0u);
  EXPECT_NE(stats.to_text().find("ingest streams 1"), std::string::npos);
}

TEST(IngestService, ValidationAndIdempotentOpen) {
  obs::MetricsRegistry registry;
  service::ServiceConfig config;
  config.metrics = &registry;
  service::DiagnosisService service(config);

  EXPECT_FALSE(service.open_stream("", "sdn1").ok);
  EXPECT_FALSE(service.open_stream("s", "").ok) << "needs scenario or program";
  EXPECT_FALSE(service.open_stream("s", "no-such-scenario").ok);

  const service::IngestOutcome first = service.open_stream("s", "sdn1");
  ASSERT_TRUE(first.ok) << first.error;
  const service::IngestOutcome again = service.open_stream("s", "sdn2");
  EXPECT_TRUE(again.ok) << "reopen is idempotent, program ignored";
  EXPECT_EQ(service.ingest_streams().size(), 1u);

  const service::IngestOutcome missing = service.ingest("ghost", "+ x(@a) @ 1");
  EXPECT_FALSE(missing.ok);
  EXPECT_NE(missing.error.find("unknown ingest stream"), std::string::npos);
  EXPECT_NE(missing.error.find("ingest_open"), std::string::npos);

  service::Query query;
  query.stream = "ghost";
  const service::SubmitOutcome submit = service.submit(query);
  EXPECT_FALSE(submit.ok());
  EXPECT_NE(submit.error.find("unknown ingest stream"), std::string::npos);

  service::Query both;
  both.stream = "s";
  both.scenario = "sdn1";
  EXPECT_FALSE(service.submit(both).ok())
      << "a query names a stream or a scenario, not both";

  const service::IngestOutcome bad = service.ingest("s", "garbage");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(service.ingest_streams().find("s")->stats().events, 0u);
}

TEST(IngestService, ExplainProfileCarriesTheSnapshotPhase) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  service::ServiceConfig config;
  config.metrics = &registry;
  service::DiagnosisService service(config);
  ASSERT_TRUE(service.open_stream("live", "sdn1").ok);
  ASSERT_TRUE(service.ingest("live", problem.log.to_text()).ok);

  service::Query query;
  query.stream = "live";
  const service::QueryStatus status = wait_done(service, service.submit(query));
  ASSERT_EQ(status.state, service::QueryState::kDone);
  ASSERT_FALSE(status.result.profile_json.empty());

  std::string error;
  const auto profile = obs::Json::parse(status.result.profile_json, error);
  ASSERT_TRUE(profile.has_value())
      << error << " in " << status.result.profile_json;
  EXPECT_TRUE(profile->get_bool("warm_hit"))
      << "a live stream never replays on the hot path";

  // The --explain invariant: phases (now including ingest_snapshot_us) plus
  // other_us reconcile *exactly* to total_us.
  const obs::Json* phases = profile->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->kind, obs::Json::Kind::kObject);
  EXPECT_NE(phases->find("ingest_snapshot_us"), nullptr);
  EXPECT_NE(phases->find("replay_us"), nullptr);
  double phase_sum = 0;
  for (const auto& [name, value] : phases->object) {
    ASSERT_EQ(value.kind, obs::Json::Kind::kNumber) << name;
    EXPECT_GE(value.number, 0) << name;
    phase_sum += value.number;
  }
  EXPECT_DOUBLE_EQ(phase_sum, profile->get_number("total_us"));

  EXPECT_EQ(phases->find("replay_us")->number, 0)
      << "stream queries take no cold replay";
}

TEST(IngestProtocol, NdjsonOpsRoundTrip) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  service::ServiceConfig config;
  config.metrics = &registry;
  service::DiagnosisService service(config);
  bool shutdown = false;

  auto call = [&](const std::string& line) {
    const std::string reply = service::handle_request(service, line, shutdown);
    std::string error;
    auto json = obs::Json::parse(reply, error);
    EXPECT_TRUE(json.has_value()) << error << " in " << reply;
    return std::move(*json);
  };

  obs::Json opened = call(
      R"({"op":"ingest_open","stream":"live","scenario":"sdn1"})");
  EXPECT_TRUE(opened.get_bool("ok")) << opened.get_string("error");

  const obs::Json fed = call(R"({"op":"ingest","stream":"live","events":)" +
                             obs::json_quote(problem.log.to_text()) +
                             R"(,"seal":true})");
  EXPECT_TRUE(fed.get_bool("ok")) << fed.get_string("error");
  EXPECT_EQ(fed.get_number("accepted"),
            static_cast<double>(problem.log.size()));
  const obs::Json* stream_stats = fed.find("stream");
  ASSERT_NE(stream_stats, nullptr);
  EXPECT_EQ(stream_stats->get_number("events"),
            static_cast<double>(problem.log.size()));
  EXPECT_GT(stream_stats->get_number("sealed_epochs"), 0);

  EXPECT_FALSE(call(R"({"op":"ingest_open"})").get_bool("ok"));
  EXPECT_FALSE(call(R"({"op":"ingest","stream":"ghost","events":""})")
                   .get_bool("ok"));

  const obs::Json submitted = call(
      R"({"op":"submit","stream":"live"})");
  ASSERT_TRUE(submitted.get_bool("ok")) << submitted.get_string("error");
  const auto id = static_cast<std::uint64_t>(submitted.get_number("id"));
  const obs::Json done =
      call(R"({"op":"wait","id":)" + std::to_string(id) + "}");
  EXPECT_TRUE(done.get_bool("ok"));
  EXPECT_EQ(done.get_string("state"), "done");
  const CliAnswer expected = run_cli({"--scenario", "sdn1"});
  EXPECT_EQ(done.get_string("out"), expected.out);

  const obs::Json stats = call(R"({"op":"stats"})");
  const obs::Json* ingest_stats = stats.find("stats");
  ASSERT_NE(ingest_stats, nullptr);
  ingest_stats = ingest_stats->find("ingest");
  ASSERT_NE(ingest_stats, nullptr);
  EXPECT_EQ(ingest_stats->get_number("streams"), 1);
  EXPECT_NE(ingest_stats->find("per_stream")->find("live"), nullptr);
  EXPECT_FALSE(shutdown);
}

// ----------------------------------------------------- concurrency --
// The TSan target: an appender, several diagnosis clients, and a
// maintenance thread race on one live stream.

TEST(IngestServiceConcurrency, AppendersQueriesAndMaintenanceRace) {
  const service::Problem problem = scenario("sdn1");
  obs::MetricsRegistry registry;
  service::ServiceConfig config;
  config.metrics = &registry;
  config.workers = 2;
  config.ingest.epoch_events = 4;
  config.ingest.checkpoint_every_epochs = 2;
  config.ingest.compact_watermark = 2;
  config.ingest.retain_epochs = 1;
  service::DiagnosisService service(config);
  ASSERT_TRUE(service.open_stream("live", "sdn1").ok);

  std::vector<std::string> lines;
  std::istringstream split(problem.log.to_text());
  for (std::string line; std::getline(split, line);) lines.push_back(line);

  std::atomic<bool> done{false};
  std::thread appender([&] {
    for (std::size_t i = 0; i < lines.size(); i += 3) {
      std::string batch;
      for (std::size_t j = i; j < std::min(i + 3, lines.size()); ++j) {
        batch += lines[j] + "\n";
      }
      const service::IngestOutcome fed = service.ingest("live", batch);
      EXPECT_TRUE(fed.ok) << fed.error;
      std::this_thread::yield();
    }
    done.store(true);
  });

  std::thread maintainer([&] {
    while (!done.load()) {
      service.ingest_streams().maintain(/*under_pressure=*/false);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        service::Query query;
        query.stream = "live";
        query.bypass_cache = true;
        const service::SubmitOutcome submitted = service.submit(query);
        if (!submitted.ok()) continue;  // shed under load is fine
        const auto status = service.wait(submitted.id);
        ASSERT_TRUE(status.has_value());
        if (status->state == service::QueryState::kDone) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  appender.join();
  for (auto& client : clients) client.join();
  maintainer.join();
  EXPECT_GT(completed.load(), 0);

  // Quiesced: the full stream now answers exactly like the one-shot CLI.
  service::Query query;
  query.stream = "live";
  query.bypass_cache = true;
  const service::QueryStatus final_status =
      wait_done(service, service.submit(query));
  const CliAnswer expected = run_cli({"--scenario", "sdn1"});
  EXPECT_EQ(final_status.result.out, expected.out);
  EXPECT_EQ(final_status.result.exit_code, expected.exit_code);
  EXPECT_EQ(service.stats().ingest_events, lines.size());
}

}  // namespace
}  // namespace dp::ingest
