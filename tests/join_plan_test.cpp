// Indexed-plan vs reference-scan engine equivalence, plus unit coverage for
// the pieces the plans are built from.
//
// The compiled-plan evaluator (runtime/plan.h) reorders body atoms, probes
// secondary table indexes, and carries bindings in a flat register file. Its
// one hard requirement is that none of this is observable: for every
// scenario in the repo, event order, live state, stats, and the full
// provenance graph must be *byte-identical* to the reference full-scan
// evaluator. This file drives every SDN, DNS, and MapReduce scenario through
// both paths and compares everything, then unit-tests index maintenance
// (lazy build, upsert displacement, delete), plan shapes (greedy ordering,
// probe column sets), slot-compiled expression parity, and the support-map
// regression from the retraction path.
#include <gtest/gtest.h>

#include <cctype>

#include <string>
#include <vector>

#include "dns/dns.h"
#include "mapred/scenario.h"
#include "mapred/wordcount.h"
#include "ndlog/parser.h"
#include "obs/metrics.h"
#include "provenance/recorder.h"
#include "replay/event_log.h"
#include "runtime/engine.h"
#include "runtime/plan.h"
#include "sdn/scenario.h"

namespace dp {
namespace {

// ------------------------------------------------- cross-variant harness --

struct ScenarioRun {
  std::string name;
  Program program;
  Topology topology;
  EventLog log;
};

std::vector<ScenarioRun> all_scenario_runs() {
  std::vector<ScenarioRun> out;
  for (sdn::Scenario& s : sdn::all_scenarios()) {
    out.push_back({"sdn_" + s.name, std::move(s.program),
                   std::move(s.topology), std::move(s.log)});
  }
  for (dns::Scenario& s : dns::all_scenarios()) {
    out.push_back({"dns_" + s.name, std::move(s.program),
                   std::move(s.topology), std::move(s.log)});
  }
  for (auto scenario : {mapred::mr1_declarative(), mapred::mr2_declarative()}) {
    out.push_back({"mapred_" + scenario.name, scenario.model, Topology{},
                   mapred::declarative_job_log(scenario.store,
                                               scenario.good_config)});
  }
  return out;
}

struct RunResult {
  Engine::Stats stats;
  std::map<std::string, std::vector<Tuple>> live;
  ProvenanceGraph graph;
  std::size_t support_entries = 0;
};

/// The three execution variants under test. kFullScan is the reference
/// evaluator; kRow adds compiled join plans; kBatch additionally drains
/// same-time delta runs into batched plan firings.
enum class Variant { kFullScan, kRow, kBatch };

RunResult run_scenario(const ScenarioRun& scenario, Variant variant) {
  EngineConfig config;
  config.use_join_plans = variant != Variant::kFullScan;
  config.use_batch_exec = variant == Variant::kBatch;
  Engine engine(Program(scenario.program), config);
  for (const Topology::Link& link : scenario.topology.links) {
    engine.add_link(link.a, link.b, link.delay);
  }
  ProvenanceRecorder recorder;
  engine.add_observer(&recorder);
  for (const LogRecord& r : scenario.log.records()) {
    if (r.op == LogRecord::Op::kInsert) {
      engine.schedule_insert(r.tuple(), r.time);
    } else {
      engine.schedule_delete(r.tuple(), r.time);
    }
  }
  engine.run();
  RunResult result;
  result.stats = engine.stats();
  for (const auto& [table, decl] : engine.program().tables()) {
    result.live[table] = engine.live_tuples(table);
  }
  result.graph = std::move(recorder.graph());
  result.support_entries = engine.support_entries();
  return result;
}

void expect_identical_graphs(const ProvenanceGraph& a,
                             const ProvenanceGraph& b) {
  ASSERT_EQ(a.size(), b.size());
  for (VertexId id = 0; id < a.size(); ++id) {
    const Vertex& va = a.vertex(id);
    const Vertex& vb = b.vertex(id);
    ASSERT_EQ(va.kind, vb.kind) << "vertex " << id;
    ASSERT_EQ(va.tuple(), vb.tuple()) << "vertex " << id;
    ASSERT_EQ(va.rule(), vb.rule()) << "vertex " << id;
    ASSERT_EQ(va.time, vb.time) << "vertex " << id;
    ASSERT_EQ(va.interval.start, vb.interval.start) << "vertex " << id;
    ASSERT_EQ(va.interval.end, vb.interval.end) << "vertex " << id;
    ASSERT_EQ(va.children, vb.children) << "vertex " << id;
    ASSERT_EQ(va.trigger_index, vb.trigger_index) << "vertex " << id;
  }
}

class JoinPlanCrossVariant : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JoinPlanCrossVariant, IndexedPlansAreByteIdenticalToFullScans) {
  const ScenarioRun scenario =
      std::move(all_scenario_runs()[GetParam()]);
  const RunResult planned = run_scenario(scenario, Variant::kRow);
  const RunResult scanned = run_scenario(scenario, Variant::kFullScan);

  EXPECT_EQ(planned.stats.base_inserts, scanned.stats.base_inserts);
  EXPECT_EQ(planned.stats.base_deletes, scanned.stats.base_deletes);
  EXPECT_EQ(planned.stats.derivations, scanned.stats.derivations);
  EXPECT_EQ(planned.stats.underivations, scanned.stats.underivations);
  EXPECT_EQ(planned.stats.remote_messages, scanned.stats.remote_messages);
  EXPECT_EQ(planned.stats.events_processed, scanned.stats.events_processed);
  EXPECT_EQ(planned.support_entries, scanned.support_entries);

  // The planned engine must never examine more join candidates than the
  // scans did -- that is the whole point of the indexes.
  EXPECT_LE(planned.stats.tuples_scanned, scanned.stats.tuples_scanned);
  EXPECT_EQ(planned.stats.tuples_matched, scanned.stats.tuples_matched);

  for (const auto& [table, tuples] : scanned.live) {
    EXPECT_EQ(planned.live.at(table), tuples) << table;
  }
  expect_identical_graphs(planned.graph, scanned.graph);
}

TEST_P(JoinPlanCrossVariant, BatchedExecutionIsByteIdenticalToRowAtATime) {
  const ScenarioRun scenario =
      std::move(all_scenario_runs()[GetParam()]);
  const RunResult batch = run_scenario(scenario, Variant::kBatch);
  const RunResult row = run_scenario(scenario, Variant::kRow);

  // Batching is a pure scheduling change, so unlike the fullscan-vs-row
  // comparison EVERY counter must match -- including the three join
  // counters. One probe per frontier row, one scan per candidate, one match
  // per survivor: the batch BFS visits exactly the pairs the row DFS does.
  EXPECT_EQ(batch.stats.base_inserts, row.stats.base_inserts);
  EXPECT_EQ(batch.stats.base_deletes, row.stats.base_deletes);
  EXPECT_EQ(batch.stats.derivations, row.stats.derivations);
  EXPECT_EQ(batch.stats.underivations, row.stats.underivations);
  EXPECT_EQ(batch.stats.remote_messages, row.stats.remote_messages);
  EXPECT_EQ(batch.stats.events_processed, row.stats.events_processed);
  EXPECT_EQ(batch.stats.index_probes, row.stats.index_probes);
  EXPECT_EQ(batch.stats.tuples_scanned, row.stats.tuples_scanned);
  EXPECT_EQ(batch.stats.tuples_matched, row.stats.tuples_matched);
  EXPECT_EQ(batch.support_entries, row.support_entries);

  for (const auto& [table, tuples] : row.live) {
    EXPECT_EQ(batch.live.at(table), tuples) << table;
  }
  expect_identical_graphs(batch.graph, row.graph);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, JoinPlanCrossVariant,
    ::testing::Range<std::size_t>(0, 8),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      // gtest parameter names must be alphanumeric; scenario names carry
      // hyphens ("DNS-stale-record").
      std::string name = all_scenario_runs()[info.param].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(JoinPlanCrossVariant, ScenarioCountMatchesInstantiation) {
  // Keep the Range above in sync with the scenario inventory.
  EXPECT_EQ(all_scenario_runs().size(), 8u);
}

// ------------------------------------------------------ index maintenance --

TableDecl keyed_decl() {
  TableDecl decl;
  decl.name = "flow";
  decl.arity = 3;                 // (location, key, payload)
  decl.key_columns = {0, 1};
  return decl;
}

Tuple flow(const std::string& node, std::int64_t key, std::int64_t payload) {
  return Tuple("flow", {Value(node), Value(key), Value(payload)});
}

/// The indexed enumeration must equal filtering a full live scan.
std::vector<Tuple> reference_matches(const Table& table, std::size_t col,
                                     const Value& v) {
  std::vector<Tuple> out;
  table.for_each_live([&](const Tuple& t) {
    if (t.at(col) == v) out.push_back(t);
  });
  return out;
}

std::vector<Tuple> indexed_matches(const Table& table, std::size_t col,
                                   const Value& v) {
  std::vector<Tuple> out;
  table.for_each_live_matching({col}, {v},
                               [&](const Tuple& t) { out.push_back(t); });
  return out;
}

TEST(JoinIndex, IsBuiltLazilyAndMatchesAFilteredScan) {
  Table table(keyed_decl());
  for (int k = 0; k < 10; ++k) {
    table.insert(flow("n1", k, k % 3), 1);
    table.insert(flow("n2", k, k % 3), 1);
  }
  EXPECT_EQ(table.index_count(), 0u);
  EXPECT_EQ(indexed_matches(table, 2, Value(1)),
            reference_matches(table, 2, Value(1)));
  EXPECT_EQ(table.index_count(), 1u);
  // A disjoint column set materializes its own index.
  EXPECT_EQ(indexed_matches(table, 0, Value("n2")),
            reference_matches(table, 0, Value("n2")));
  EXPECT_EQ(table.index_count(), 2u);
  // Probing a value with no bucket is an empty enumeration, not an error.
  EXPECT_TRUE(indexed_matches(table, 2, Value(99)).empty());
}

TEST(JoinIndex, StaysCurrentAcrossInsertUpsertAndDelete) {
  Table table(keyed_decl());
  for (int k = 0; k < 6; ++k) table.insert(flow("n1", k, k % 2), 1);
  ASSERT_EQ(indexed_matches(table, 2, Value(0)).size(), 3u);

  // Plain insert after the index exists.
  table.insert(flow("n1", 100, 0), 2);
  EXPECT_EQ(indexed_matches(table, 2, Value(0)),
            reference_matches(table, 2, Value(0)));

  // Upsert displacement: same key (n1, 2), new payload. The displaced row
  // must leave the payload-0 bucket and the new one enter payload-7's.
  const auto result = table.insert(flow("n1", 2, 7), 3);
  ASSERT_TRUE(result.displaced.has_value());
  EXPECT_EQ(indexed_matches(table, 2, Value(0)),
            reference_matches(table, 2, Value(0)));
  EXPECT_EQ(indexed_matches(table, 2, Value(7)),
            reference_matches(table, 2, Value(7)));
  EXPECT_EQ(indexed_matches(table, 2, Value(7)).size(), 1u);

  // Delete.
  ASSERT_TRUE(table.remove(flow("n1", 4, 0), 4));
  EXPECT_EQ(indexed_matches(table, 2, Value(0)),
            reference_matches(table, 2, Value(0)));

  // Re-insert of a removed tuple re-enters the bucket.
  table.insert(flow("n1", 4, 0), 5);
  EXPECT_EQ(indexed_matches(table, 2, Value(0)),
            reference_matches(table, 2, Value(0)));
}

TEST(JoinIndex, MultiColumnProbeAndCopySafety) {
  Table table(keyed_decl());
  for (int k = 0; k < 8; ++k) table.insert(flow("n1", k, k % 4), 1);
  std::vector<Tuple> matched;
  table.for_each_live_matching(
      {0, 2}, {Value("n1"), Value(3)},
      [&](const Tuple& t) { matched.push_back(t); });
  EXPECT_EQ(matched, reference_matches(table, 2, Value(3)));
  ASSERT_EQ(table.index_count(), 1u);

  // A copied table drops the cached indexes (they point into the source's
  // live rows) and rebuilds them on demand with identical results.
  const Table copy(table);
  EXPECT_EQ(copy.index_count(), 0u);
  EXPECT_EQ(indexed_matches(copy, 2, Value(3)),
            reference_matches(copy, 2, Value(3)));
}

TEST(JoinIndex, KeyOfScratchOverloadAgreesWithAllocating) {
  Table table(keyed_decl());
  const Tuple t = flow("n9", 5, 17);
  std::vector<Value> scratch = {Value(1), Value(2), Value(3)};  // stale
  EXPECT_EQ(table.key_of(t, scratch), table.key_of(t));

  TableDecl keyless;
  keyless.name = "bag";
  keyless.arity = 3;
  const Table bag(keyless);
  EXPECT_EQ(bag.key_of(t, scratch), bag.key_of(t));
  EXPECT_EQ(scratch, t.values());
}

// ------------------------------------------------------------ plan shapes --

TEST(RulePlans, ResolveProbeColumnsAndGreedyOrder) {
  const Program program = parse_program(R"(
    table packet(3) base immutable event.
    table flowEntry(4) keys(0, 2) base mutable.
    table fwd(4) derived event.
    rule r1 fwd(@Sw, Pkt, Dst, Next) :-
      packet(@Sw, Pkt, Dst), flowEntry(@Sw, Prio, Prefix, Next),
      f_matches(Dst, Prefix) == 1.
  )");
  const auto plans = compile_rule_plans(program);
  ASSERT_EQ(plans.count("packet"), 1u);
  ASSERT_EQ(plans.count("flowEntry"), 1u);
  ASSERT_EQ(plans.count("fwd"), 0u);

  // Triggered by a packet, the flowEntry step probes on the shared location
  // variable (column 0) only.
  const RulePlan& by_packet = plans.at("packet").front();
  ASSERT_EQ(by_packet.steps.size(), 1u);
  EXPECT_EQ(by_packet.steps[0].table, "flowEntry");
  EXPECT_EQ(by_packet.steps[0].probe_cols, ColumnSet{0});
  EXPECT_EQ(by_packet.steps[0].residual.size(), 3u);
  EXPECT_EQ(by_packet.constraints.size(), 1u);
  EXPECT_EQ(by_packet.slot_count, 6u);  // Sw Pkt Dst Prio Prefix Next
}

TEST(RulePlans, GreedyOrderPrefersMoreBoundAtoms) {
  const Program program = parse_program(R"(
    table a(2) base mutable event.
    table b(2) base mutable.
    table c(3) base mutable.
    table out(2) derived event.
    rule r out(@N, Y) :- a(@N, X), b(@N, Y), c(@N, X, Y).
  )");
  const auto plans = compile_rule_plans(program);
  const RulePlan& plan = plans.at("a").front();
  ASSERT_EQ(plan.steps.size(), 2u);
  // After the trigger binds (N, X), atom c has two bound columns and joins
  // before b (one bound column) despite appearing later in the body.
  EXPECT_EQ(plan.steps[0].body_index, 2u);
  EXPECT_EQ(plan.steps[0].probe_cols, (ColumnSet{0, 1}));
  EXPECT_EQ(plan.steps[1].body_index, 1u);
  // By then Y is bound too, so b probes on both of its columns.
  EXPECT_EQ(plan.steps[1].probe_cols, (ColumnSet{0, 1}));
}

TEST(RulePlans, RepeatedVariableWithinAnAtomChecksNotProbes) {
  const Program program = parse_program(R"(
    table t(2) base mutable event.
    table pair(3) base mutable.
    table out(2) derived event.
    rule r out(@N, X) :- t(@N, V), pair(@N, X, X).
  )");
  const auto plans = compile_rule_plans(program);
  const RulePlan& plan = plans.at("t").front();
  ASSERT_EQ(plan.steps.size(), 1u);
  // Only the location is bound before the probe; the second X occurrence is
  // an intra-candidate equality check, not part of the index key.
  EXPECT_EQ(plan.steps[0].probe_cols, ColumnSet{0});
  ASSERT_EQ(plan.steps[0].residual.size(), 2u);
  EXPECT_EQ(plan.steps[0].residual[0].kind, ColOp::Kind::kBind);
  EXPECT_EQ(plan.steps[0].residual[1].kind, ColOp::Kind::kCheck);
  EXPECT_EQ(plan.steps[0].residual[0].slot, plan.steps[0].residual[1].slot);
}

// ------------------------------------------------- slot-compiled exprs --

TEST(SlotExprs, CompiledEvaluationMatchesTheBindingsPath) {
  const Bindings bindings = {
      {"X", Value(41)}, {"Y", Value(17)}, {"S", Value("ab")}};
  Regs regs;
  std::map<std::string, std::size_t> slots;
  for (const auto& [name, value] : bindings) {
    slots[name] = regs.size();
    regs.push_back(value);
  }
  const auto resolve = [&slots](const std::string& name) {
    return slots.at(name);
  };
  for (const char* source : {
           "(X * 7 + Y) ^ 12345",
           "X > Y && !(Y == 3)",
           "-X + (Y % 5)",
           "S + \"c\"",
           "f_strlen(S + S) * 2",
       }) {
    const ExprPtr expr = parse_expression(source);
    const SlotExpr compiled = compile_expr(*expr, resolve);
    EXPECT_EQ(eval_expr(compiled, regs), eval_expr(*expr, bindings))
        << source;
  }
}

// ------------------------------------------------- batch-boundary cases --

/// Runs `program_text` over `records` under `variant` with a private metrics
/// registry, returning stats, live state, and the batch counters.
struct BatchProbeResult {
  Engine::Stats stats;
  std::map<std::string, std::vector<Tuple>> live;
  std::uint64_t batches = 0;
  std::uint64_t batch_events = 0;
};

BatchProbeResult run_batch_probe(const std::string& program_text,
                                 const std::vector<LogRecord>& records,
                                 Variant variant) {
  obs::MetricsRegistry registry;
  EngineConfig config;
  config.use_join_plans = variant != Variant::kFullScan;
  config.use_batch_exec = variant == Variant::kBatch;
  config.metrics = &registry;
  Engine engine(parse_program(program_text), config);
  for (const LogRecord& r : records) {
    if (r.op == LogRecord::Op::kInsert) {
      engine.schedule_insert(r.tuple(), r.time);
    } else {
      engine.schedule_delete(r.tuple(), r.time);
    }
  }
  engine.run();
  BatchProbeResult result;
  result.stats = engine.stats();
  for (const auto& [table, decl] : engine.program().tables()) {
    result.live[table] = engine.live_tuples(table);
  }
  result.batches = registry.counter("dp.engine.batch.batches").value();
  result.batch_events = registry.counter("dp.engine.batch.events").value();
  return result;
}

LogRecord insert_at(const Tuple& tuple, LogicalTime t) {
  return LogRecord(LogRecord::Op::kInsert, t, tuple);
}

TEST(BatchExec, SelfJoinDeltasDegradeToSizeOneBatches) {
  // p's own plan probes p, so the forbidden-table rule must cut the batch
  // after every delta: each insert has to see the previous one's derivations
  // settled before it fires.
  const std::string program = R"(
    table p(2) keys(0, 1) base mutable.
    table out(3) derived event.
    rule r out(@N, X, Y) :- p(@N, X), p(@N, Y).
  )";
  std::vector<LogRecord> records;
  for (int k = 0; k < 6; ++k) {
    records.push_back(insert_at(Tuple("p", {Value("n1"), Value(k)}), 1));
  }
  const BatchProbeResult batch =
      run_batch_probe(program, records, Variant::kBatch);
  const BatchProbeResult row = run_batch_probe(program, records, Variant::kRow);

  // Six size-1 batches: insert k must see inserts 1..k-1's derivations
  // before it fires. The 42 derived `out` events (2i per insert i, counting
  // the doubled self-pair) then drain as one batch -- out has no plans, so
  // nothing forbids coalescing them.
  EXPECT_EQ(batch.batches, 7u);
  EXPECT_EQ(batch.batch_events, row.stats.events_processed);
  EXPECT_EQ(batch.stats.derivations, row.stats.derivations);
  EXPECT_EQ(batch.stats.index_probes, row.stats.index_probes);
  EXPECT_EQ(batch.stats.tuples_scanned, row.stats.tuples_scanned);
  EXPECT_EQ(batch.stats.tuples_matched, row.stats.tuples_matched);
  EXPECT_EQ(batch.live, row.live);
}

TEST(BatchExec, IndependentSameTimeDeltasShareOneBatch) {
  // Probe events only read b, never their own table, so a same-time run of
  // probes coalesces into a single batch firing.
  const std::string program = R"(
    table a(2) base immutable event.
    table b(3) keys(0, 1) base mutable.
    table out(3) derived event.
    rule r out(@N, K, V) :- a(@N, K), b(@N, K, V).
  )";
  std::vector<LogRecord> records;
  for (int k = 0; k < 8; ++k) {
    records.push_back(
        insert_at(Tuple("b", {Value("n1"), Value(k), Value(k * 10)}), 0));
  }
  for (int k = 0; k < 8; ++k) {
    // Half the probes hit, half miss (keys past the populated range).
    records.push_back(insert_at(Tuple("a", {Value("n1"), Value(k * 2)}), 1));
  }
  const BatchProbeResult batch =
      run_batch_probe(program, records, Variant::kBatch);
  const BatchProbeResult row = run_batch_probe(program, records, Variant::kRow);

  EXPECT_LT(batch.batches, batch.batch_events);  // at least one real batch
  EXPECT_EQ(batch.stats.derivations, row.stats.derivations);
  EXPECT_EQ(batch.stats.index_probes, row.stats.index_probes);
  EXPECT_EQ(batch.stats.tuples_scanned, row.stats.tuples_scanned);
  EXPECT_EQ(batch.stats.tuples_matched, row.stats.tuples_matched);
  EXPECT_EQ(batch.live, row.live);
}

TEST(BatchExec, DisplacingInsertFlushesTheBatch) {
  // Two same-time inserts with the same key: the second displaces the first,
  // which batch formation must refuse to admit (the displaced row's
  // retraction has to run between them). Live state and stats still match
  // the row path exactly.
  const std::string program = R"(
    table kv(3) keys(0, 1) base mutable.
    table echo(3) derived event.
    rule r echo(@N, K, V) :- kv(@N, K, V).
  )";
  const std::vector<LogRecord> records = {
      insert_at(Tuple("kv", {Value("n1"), Value(1), Value(10)}), 1),
      insert_at(Tuple("kv", {Value("n1"), Value(2), Value(20)}), 1),
      insert_at(Tuple("kv", {Value("n1"), Value(1), Value(11)}), 1),
  };
  const BatchProbeResult batch =
      run_batch_probe(program, records, Variant::kBatch);
  const BatchProbeResult row = run_batch_probe(program, records, Variant::kRow);

  EXPECT_EQ(batch.stats.base_inserts, row.stats.base_inserts);
  EXPECT_EQ(batch.stats.base_deletes, row.stats.base_deletes);
  EXPECT_EQ(batch.stats.derivations, row.stats.derivations);
  EXPECT_EQ(batch.stats.underivations, row.stats.underivations);
  EXPECT_EQ(batch.live, row.live);
  ASSERT_EQ(batch.live.at("kv").size(), 2u);
}

// ------------------------------------------- support-map retraction fix --

TEST(SupportMap, RetractionErasesExhaustedEntries) {
  Engine engine(parse_program(R"(
    table base(2) base mutable.
    table mid(2) derived.
    table top(2) derived.
    rule r1 mid(@N, X) :- base(@N, X).
    rule r2 top(@N, X) :- mid(@N, X).
  )"));
  for (int i = 0; i < 5; ++i) {
    engine.schedule_insert(Tuple("base", {Value("n"), Value(i)}), 1);
  }
  engine.run();
  // One supported entry per live derived head (mid + top per base tuple).
  EXPECT_EQ(engine.support_entries(), 10u);

  for (int i = 0; i < 5; ++i) {
    engine.schedule_delete(Tuple("base", {Value("n"), Value(i)}), 100);
  }
  engine.run();
  EXPECT_EQ(engine.stats().underivations, 10u);
  // Regression: retraction used to write support[tuple] = 0, leaving one
  // dead map entry per underived head; now the entries are erased.
  EXPECT_EQ(engine.support_entries(), 0u);

  // Re-derivation after a full teardown starts clean.
  engine.schedule_insert(Tuple("base", {Value("n"), Value(1)}), 200);
  engine.run();
  EXPECT_EQ(engine.support_entries(), 2u);
}

}  // namespace
}  // namespace dp
