// DiffProv resource-limit behaviour and a few cross-module integrations
// (auto-reference on DNS, minimization on the Stanford black box).
#include <gtest/gtest.h>

#include "diffprov/reference.h"
#include "dns/dns.h"
#include "sdn/scenario.h"
#include "sdn/stanford.h"

namespace dp {
namespace {

TEST(Limits, RoundBudgetExhaustionIsReported) {
  // SDN4 needs two rounds; cap at one and expect a clean exhaustion that
  // still carries the first round's (correct) change.
  const sdn::Scenario s = sdn::sdn4();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProvConfig config;
  config.max_rounds = 1;
  DiffProv diffprov(s.program, provider, config);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  EXPECT_EQ(result.status, DiffProvStatus::kExhausted) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_NE(result.changes[0].to_string().find("sw2"), std::string::npos);
}

TEST(Limits, ChangeBudgetStopsRunawayAlignments) {
  const sdn::Scenario s = sdn::sdn1();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProvConfig config;
  config.max_changes = 0;  // everything over budget
  DiffProv diffprov(s.program, provider, config);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  // The first change is recorded before the budget check trips on the next
  // make_appear entry -- either way the diagnosis must not claim success
  // beyond the budget.
  EXPECT_TRUE(result.status == DiffProvStatus::kExhausted || result.ok())
      << result.to_string();
  EXPECT_LE(result.changes.size(), 1u);
}

TEST(Limits, RecursionBudgetIsEnforced) {
  const sdn::Scenario s = sdn::sdn1();
  LogReplayProvider query(s.program, s.topology, s.log);
  const BadRun run = query.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProvConfig config;
  config.max_recursion = 0;  // the first ensure_child recursion trips
  DiffProv diffprov(s.program, provider, config);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, DiffProvStatus::kExhausted) << result.to_string();
}

TEST(Integration, AutoReferenceWorksOnDns) {
  const dns::Scenario s = dns::stale_record();
  LogReplayProvider provider(s.program, s.topology, s.log);
  const BadRun run = provider.replay_bad({});
  DiffProv diffprov(s.program, provider);
  const AutoDiagnosis result =
      diagnose_with_auto_reference(diffprov, *run.graph, s.bad_event);
  ASSERT_TRUE(result.result.ok()) << result.result.to_string();
  ASSERT_TRUE(result.reference.has_value());
  EXPECT_EQ(result.reference->table(), "response");
  EXPECT_NE(result.result.changes[0].to_string().find("record(@srvA"),
            std::string::npos);
}

TEST(Integration, MinimizeKeepsTheStanfordFix) {
  sdn::StanfordConfig config;
  config.filler_entries_per_router = 20;
  config.acl_rules = 8;
  config.background_packets = 80;
  const sdn::StanfordNetwork net = sdn::build_stanford(config);
  const Program spec = sdn::make_stanford_spec();
  sdn::StanfordReplayProvider provider(net, spec);
  const BadRun run = provider.replay_bad({});
  const auto good = locate_tree(*run.graph, net.good_event);
  DiffProv diffprov(spec, provider);
  const DiffProvResult result = diffprov.diagnose(*good, net.bad_event);
  ASSERT_TRUE(result.ok()) << result.to_string();
  const DiffProvResult minimized = diffprov.minimize_delta(*good, result);
  ASSERT_EQ(minimized.changes.size(), 1u);
  EXPECT_EQ(*minimized.changes[0].before, net.fault_entry);
}

TEST(Integration, SuggestReferencesRanksTheStanfordSibling) {
  // The healthy sibling-subnet flow should rank at (or near) the top of the
  // candidate list for the dropped packet -- the heuristic mirrors how the
  // paper's operators picked the co-located subnet (section 6.7).
  sdn::StanfordConfig config;
  config.background_packets = 120;
  const sdn::StanfordNetwork net = sdn::build_stanford(config);
  const Program spec = sdn::make_stanford_spec();
  sdn::StanfordReplayProvider provider(net, spec);
  const BadRun run = provider.replay_bad({});
  // The bad event is a `dropped` tuple; candidates are other drops (ACL
  // hits from background traffic). For the *delivery* view, rank against
  // the would-be delivered tuple instead.
  const Tuple wanted("delivered", {Value("h2"), net.bad_event.at(1),
                                   net.bad_event.at(2), net.bad_event.at(3)});
  const auto candidates = suggest_references(*run.graph, wanted, 5);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].event, net.good_event);
}

}  // namespace
}  // namespace dp
