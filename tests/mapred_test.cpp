// Tests for the MapReduce substrate: corpus, model, the imperative job and
// its instrumentation, and the four paper scenarios end-to-end.
#include <gtest/gtest.h>

#include "mapred/scenario.h"

namespace dp::mapred {
namespace {

TEST(Corpus, DeterministicAndChecksummed) {
  const Corpus a = synthetic_corpus();
  const Corpus b = synthetic_corpus();
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].checksum, b.files[i].checksum);
    EXPECT_EQ(a.files[i].lines, b.files[i].lines);
  }
  EXPECT_GT(a.total_bytes(), 0u);
}

TEST(Corpus, StoreLooksUpByChecksumAndName) {
  CorpusStore store(synthetic_corpus());
  const CorpusFile& first = store.corpus().files[0];
  EXPECT_EQ(store.by_checksum(first.checksum), &store.corpus().files[0]);
  EXPECT_EQ(store.by_name(first.name), &store.corpus().files[0]);
  EXPECT_EQ(store.by_checksum("nope"), nullptr);
}

TEST(Model, SourceParsesAndScalesWithConfig) {
  const Program model = make_model();
  EXPECT_NE(model.find_rule("m0"), nullptr);
  EXPECT_NE(model.find_rule("m7"), nullptr);
  EXPECT_NE(model.find_rule("sh"), nullptr);
  EXPECT_NE(model.find_rule("js"), nullptr);
  // js depends on all configured conf entries.
  EXPECT_EQ(model.find_rule("js")->body.size(), 24u);
  const Program big = make_model({4, 24});
  EXPECT_EQ(big.find_rule("js")->body.size(), 24u);
  EXPECT_EQ(big.find_rule("m4"), nullptr);
}

TEST(Model, MapperVersionsDiffer) {
  const MapperInfo v1 = mapper_info("v1");
  const MapperInfo v2 = mapper_info("v2");
  EXPECT_EQ(v1.start, 0);
  EXPECT_EQ(v2.start, 1);
  EXPECT_NE(v1.checksum, v2.checksum);
  EXPECT_EQ(mapper_by_checksum(v2.checksum)->version, "v2");
  EXPECT_FALSE(mapper_by_checksum("bogus").has_value());
  EXPECT_THROW(mapper_info("v9"), ProgramError);
}

TEST(WordCount, CorrectCountsAndDeterminism) {
  CorpusStore store(synthetic_corpus());
  JobConfig config;
  const JobOutput a = run_wordcount(store, config);
  const JobOutput b = run_wordcount(store, config);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_GT(a.emissions, 0u);
  // Total count equals total emissions.
  std::size_t total = 0;
  for (const auto& [reducer, words] : a.counts) {
    for (const auto& [word, count] : words) {
      total += static_cast<std::size_t>(count);
    }
  }
  EXPECT_EQ(total, a.emissions);
}

TEST(WordCount, BuggyMapperDropsFirstWords) {
  CorpusStore store(synthetic_corpus());
  JobConfig good;
  JobConfig bad;
  bad.mapper_version = "v2";
  const JobOutput g = run_wordcount(store, good);
  const JobOutput b = run_wordcount(store, bad);
  // One emission fewer per line.
  EXPECT_EQ(b.emissions + g.lines, g.emissions);
}

TEST(WordCount, ReducerCountOnlyMovesWords) {
  CorpusStore store(synthetic_corpus());
  JobConfig good;
  JobConfig bad;
  bad.num_reducers = 2;
  const JobOutput g = run_wordcount(store, good);
  const JobOutput b = run_wordcount(store, bad);
  EXPECT_EQ(g.emissions, b.emissions);
  // Per-word totals are identical; only placement changes.
  std::map<std::string, int> g_total;
  std::map<std::string, int> b_total;
  for (const auto& [r, words] : g.counts) {
    for (const auto& [w, c] : words) g_total[w] += c;
  }
  for (const auto& [r, words] : b.counts) {
    for (const auto& [w, c] : words) b_total[w] += c;
  }
  EXPECT_EQ(g_total, b_total);
  EXPECT_NE(g.counts, b.counts);
}

TEST(WordCount, MetadataLogIsTinyRelativeToCorpus) {
  // Section 6.5: 26 kB of logs for 12.8 GB of data -- only metadata is
  // logged, never contents.
  CorpusConfig big;
  big.files = 8;
  big.lines_per_file = 2000;
  CorpusStore store(synthetic_corpus(big));
  JobConfig config;
  EventLog metadata;
  JobRunOptions options;
  options.metadata_log = &metadata;
  run_wordcount(store, config, options);
  EXPECT_GT(metadata.byte_size(), 0u);
  EXPECT_LT(metadata.byte_size(), store.corpus().total_bytes() / 4);
}

TEST(WordCount, InstrumentationReportsKeyValueProvenance) {
  CorpusStore store(synthetic_corpus());
  JobConfig config;
  ProvenanceRecorder recorder;
  std::map<Tuple, LogicalTime> facts;
  JobRunOptions options;
  options.recorder = &recorder;
  options.facts = &facts;
  const JobOutput output = run_wordcount(store, config, options);
  EXPECT_GT(recorder.graph().size(), output.emissions * 3);
  // Every shuffled pair is locatable in the provenance graph.
  const auto any_fact = facts.begin();
  ASSERT_NE(any_fact, facts.end());
  EXPECT_TRUE(
      recorder.graph().exist_at(any_fact->first, any_fact->second).has_value());
}

TEST(WordCount, PartitionMatchesBuiltin) {
  // The imperative partitioner must be bit-identical to f_partition, or the
  // two variants would disagree.
  for (const std::string word : {"word00", "word13", "alpha", "z"}) {
    for (int r : {2, 3, 4, 7}) {
      const int imperative = partition_of(word, r);
      EXPECT_GE(imperative, 0);
      EXPECT_LT(imperative, r);
    }
  }
  EXPECT_EQ(partition_of("word00", 4), partition_of("word00", 4));
}

// ------------------------------------------------------------ scenarios --

class MrScenarioTest : public ::testing::TestWithParam<int> {};

TEST_P(MrScenarioTest, DiffProvPinpointsRootCause) {
  const Scenario s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const Diagnosis d = diagnose(s);
  ASSERT_EQ(d.result.status, DiffProvStatus::kSuccess)
      << s.name << ": " << d.result.to_string();
  ASSERT_EQ(d.result.changes.size(), 1u) << s.name << ": "
                                         << d.result.to_string();
  EXPECT_NE(d.result.changes[0].to_string().find(s.expected_root_cause),
            std::string::npos)
      << s.name << ": " << d.result.to_string();
  EXPECT_GT(d.good_tree.size(), 20u);
  EXPECT_GT(d.bad_tree.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, MrScenarioTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name =
                               all_scenarios()[static_cast<std::size_t>(
                                                   info.param)]
                                   .name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MrScenarios, Mr1ChangeIsTheReducerCount) {
  const Diagnosis d = diagnose(mr1_declarative());
  ASSERT_TRUE(d.result.ok()) << d.result.to_string();
  const ChangeRecord& change = d.result.changes[0];
  ASSERT_TRUE(change.before && change.after);
  EXPECT_EQ(change.before->table(), "jobConfG");
  EXPECT_EQ(change.before->at(2).as_int(), 2);
  EXPECT_EQ(change.after->at(2).as_int(), 4);
}

TEST(MrScenarios, Mr2ChangeIsTheMapperChecksum) {
  const Diagnosis d = diagnose(mr2_imperative());
  ASSERT_TRUE(d.result.ok()) << d.result.to_string();
  const ChangeRecord& change = d.result.changes[0];
  ASSERT_TRUE(change.before && change.after);
  EXPECT_EQ(change.before->table(), "mapperCodeG");
  EXPECT_EQ(change.before->at(1).as_string(), mapper_info("v2").checksum);
  EXPECT_EQ(change.after->at(1).as_string(), mapper_info("v1").checksum);
}

TEST(MrScenarios, ImperativeAndDeclarativeAgreeOnTheRootCause) {
  const Diagnosis di = diagnose(mr1_imperative());
  const Diagnosis dd = diagnose(mr1_declarative());
  ASSERT_TRUE(di.result.ok()) << di.result.to_string();
  ASSERT_TRUE(dd.result.ok()) << dd.result.to_string();
  ASSERT_TRUE(di.result.changes[0].after && dd.result.changes[0].after);
  EXPECT_EQ(*di.result.changes[0].after, *dd.result.changes[0].after);
}

TEST(MrScenarios, ReplayProviderAppliesDeltaToConfig) {
  const Scenario s = mr1_imperative();
  WordCountReplayProvider provider(s.store, s.bad_config);
  Delta delta;
  delta.push_back({DeltaOp::Kind::kInsert,
                   Tuple("jobConfG", {Value("jt"), Value(kReducesKey),
                                      Value(4)}),
                   99});
  (void)provider.replay_bad(delta);
  EXPECT_EQ(provider.last_config().num_reducers, 4);
}

}  // namespace
}  // namespace dp::mapred
