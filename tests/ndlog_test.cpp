// Unit tests for the NDlog layer: values, tuples, tables, lexer, parser,
// expression evaluation, builtins, and program validation.
#include <gtest/gtest.h>

#include "ndlog/eval.h"
#include "ndlog/functions.h"
#include "ndlog/lexer.h"
#include "ndlog/parser.h"
#include "ndlog/program.h"
#include "ndlog/table.h"

namespace dp {
namespace {

// ---------------------------------------------------------------- values --

TEST(Value, TypeTagsAndAccessors) {
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(Ipv4(1, 2, 3, 4)).is_ip());
  EXPECT_TRUE(Value(IpPrefix(Ipv4(1, 2, 3, 0), 24)).is_prefix());
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_EQ(Value("x").as_string(), "x");
}

TEST(Value, OrderingIsTotalAcrossTypes) {
  const Value a(1);
  const Value b("1");
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a == b);
}

TEST(Value, HashIsStableAndTypeSensitive) {
  EXPECT_EQ(Value(5).hash(), Value(5).hash());
  EXPECT_NE(Value(5).hash(), Value("5").hash());
  EXPECT_NE(Value(Ipv4(0, 0, 0, 5)).hash(), Value(5).hash());
}

TEST(Tuple, LocationAndRendering) {
  const Tuple t("flowEntry", {Value("S2"), Value(100),
                              Value(IpPrefix(Ipv4(4, 3, 2, 0), 24))});
  EXPECT_EQ(t.location(), "S2");
  EXPECT_EQ(t.to_string(), "flowEntry(@S2, 100, 4.3.2.0/24)");
}

TEST(Tuple, WithFieldReplacesOneField) {
  const Tuple t("cfg", {Value("n"), Value(1), Value(2)});
  const Tuple u = t.with_field(2, Value(9));
  EXPECT_EQ(u.at(2).as_int(), 9);
  EXPECT_EQ(u.at(1).as_int(), 1);
  EXPECT_FALSE(t == u);
}

// ---------------------------------------------------------------- tables --

TableDecl keyed_decl() {
  TableDecl decl;
  decl.name = "cfg";
  decl.arity = 3;
  decl.key_columns = {0, 1};
  return decl;
}

TEST(Table, InsertRemoveLifecycle) {
  Table table(keyed_decl());
  const Tuple t("cfg", {Value("n"), Value("k"), Value(1)});
  EXPECT_TRUE(table.insert(t, 10).inserted);
  EXPECT_TRUE(table.is_live(t));
  EXPECT_TRUE(table.existed_at(t, 10));
  EXPECT_FALSE(table.existed_at(t, 9));
  EXPECT_TRUE(table.remove(t, 20));
  EXPECT_FALSE(table.is_live(t));
  EXPECT_TRUE(table.existed_at(t, 19));
  EXPECT_FALSE(table.existed_at(t, 20));
}

TEST(Table, KeyUpsertDisplacesOldValue) {
  Table table(keyed_decl());
  const Tuple v1("cfg", {Value("n"), Value("k"), Value(1)});
  const Tuple v2("cfg", {Value("n"), Value("k"), Value(2)});
  table.insert(v1, 10);
  const auto result = table.insert(v2, 20);
  EXPECT_TRUE(result.inserted);
  ASSERT_TRUE(result.displaced.has_value());
  EXPECT_EQ(*result.displaced, v1);
  EXPECT_FALSE(table.is_live(v1));
  EXPECT_TRUE(table.is_live(v2));
  // Temporal history kept: v1 existed during [10, 20).
  EXPECT_TRUE(table.existed_at(v1, 15));
  EXPECT_FALSE(table.existed_at(v1, 20));
}

TEST(Table, DuplicateInsertIsNoOp) {
  Table table(keyed_decl());
  const Tuple t("cfg", {Value("n"), Value("k"), Value(1)});
  EXPECT_TRUE(table.insert(t, 10).inserted);
  EXPECT_FALSE(table.insert(t, 15).inserted);
  EXPECT_EQ(table.history(t).size(), 1u);
}

TEST(Table, ReinsertionAppendsSecondInterval) {
  Table table(keyed_decl());
  const Tuple t("cfg", {Value("n"), Value("k"), Value(1)});
  table.insert(t, 10);
  table.remove(t, 20);
  table.insert(t, 30);
  const auto history = table.history(t);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0], (TimeInterval{10, 20}));
  EXPECT_TRUE(history[1].open_ended());
  EXPECT_TRUE(table.existed_at(t, 15));
  EXPECT_FALSE(table.existed_at(t, 25));
  EXPECT_TRUE(table.existed_at(t, 35));
}

TEST(Table, SetSemanticsWithoutKeys) {
  TableDecl decl;
  decl.name = "s";
  decl.arity = 2;
  Table table(decl);
  const Tuple a("s", {Value("n"), Value(1)});
  const Tuple b("s", {Value("n"), Value(2)});
  table.insert(a, 1);
  const auto result = table.insert(b, 2);
  EXPECT_TRUE(result.inserted);
  EXPECT_FALSE(result.displaced.has_value());  // different full tuples coexist
  EXPECT_EQ(table.live_count(), 2u);
}

TEST(Table, ForEachAtSeesHistoricalState) {
  Table table(keyed_decl());
  const Tuple v1("cfg", {Value("n"), Value("k"), Value(1)});
  const Tuple v2("cfg", {Value("n"), Value("k"), Value(2)});
  table.insert(v1, 10);
  table.insert(v2, 20);  // displaces v1
  std::vector<Tuple> at15;
  table.for_each_at(15, [&](const Tuple& t) { at15.push_back(t); });
  ASSERT_EQ(at15.size(), 1u);
  EXPECT_EQ(at15[0], v1);
  std::vector<Tuple> at25;
  table.for_each_at(25, [&](const Tuple& t) { at25.push_back(t); });
  ASSERT_EQ(at25.size(), 1u);
  EXPECT_EQ(at25[0], v2);
}

// ----------------------------------------------------------------- lexer --

TEST(Lexer, NumbersIpsAndPrefixes) {
  const auto tokens = lex("42 4.2 4.3.2.1 4.3.2.0/24");
  ASSERT_EQ(tokens.size(), 5u);  // + end
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIp);
  EXPECT_EQ(tokens[3].kind, TokenKind::kPrefix);
  EXPECT_EQ(tokens[3].literal.as_prefix().length(), 24);
}

TEST(Lexer, PeriodAfterNumberIsStatementTerminator) {
  const auto tokens = lex("foo(4).");
  // ident, (, int, ), period, end
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[4].kind, TokenKind::kPeriod);
}

TEST(Lexer, VariablesVsIdentifiers) {
  const auto tokens = lex("Pkt flowEntry _ f_matches");
  EXPECT_EQ(tokens[0].kind, TokenKind::kVar);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[2].kind, TokenKind::kVar);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);
}

TEST(Lexer, OperatorsAndPunctuation) {
  const auto tokens = lex(":- := == != <= >= << >> && || @ , ( ) .");
  EXPECT_EQ(tokens[0].kind, TokenKind::kTurnstile);
  EXPECT_EQ(tokens[1].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[2].text, "==");
  EXPECT_EQ(tokens[3].text, "!=");
  EXPECT_EQ(tokens[8].text, "&&");
  EXPECT_EQ(tokens[9].text, "||");
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = lex("a // comment\n# another\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, StringEscapes) {
  const auto tokens = lex(R"("a\"b\\c")");
  EXPECT_EQ(tokens[0].literal.as_string(), "a\"b\\c");
}

TEST(Lexer, ReportsPositionOnError) {
  try {
    lex("a\n  $");
    FAIL() << "expected LexError";
  } catch (const LexError& e) {
    EXPECT_NE(std::string(e.what()).find("2:3"), std::string::npos);
  }
}

// ----------------------------------------------------------- expressions --

Value eval_str(const std::string& source, const Bindings& bindings = {}) {
  return eval_expr(*parse_expression(source), bindings);
}

TEST(Eval, ArithmeticPrecedence) {
  EXPECT_EQ(eval_str("2 + 3 * 4").as_int(), 14);
  EXPECT_EQ(eval_str("(2 + 3) * 4").as_int(), 20);
  EXPECT_EQ(eval_str("10 - 4 - 3").as_int(), 3);  // left assoc
  EXPECT_EQ(eval_str("7 % 3").as_int(), 1);
}

TEST(Eval, ComparisonAndLogic) {
  EXPECT_EQ(eval_str("1 < 2 && 3 >= 3").as_int(), 1);
  EXPECT_EQ(eval_str("1 == 2 || 2 == 2").as_int(), 1);
  EXPECT_EQ(eval_str("!(1 == 1)").as_int(), 0);
  EXPECT_EQ(eval_str("1 != 2").as_int(), 1);
}

TEST(Eval, BitOperations) {
  EXPECT_EQ(eval_str("12 & 10").as_int(), 8);
  EXPECT_EQ(eval_str("12 | 10").as_int(), 14);
  EXPECT_EQ(eval_str("12 ^ 10").as_int(), 6);
  EXPECT_EQ(eval_str("1 << 4").as_int(), 16);
  EXPECT_EQ(eval_str("255 >> 4").as_int(), 15);
}

TEST(Eval, VariablesAndUnbound) {
  Bindings b{{"X", Value(5)}};
  EXPECT_EQ(eval_expr(*parse_expression("X * 2 + 1"), b).as_int(), 11);
  EXPECT_THROW(eval_str("Y + 1"), EvalError);
}

TEST(Eval, MixedNumericPromotesToDouble) {
  EXPECT_DOUBLE_EQ(eval_str("1 + 0.5").as_double(), 1.5);
}

TEST(Eval, DivisionByZeroThrows) {
  EXPECT_THROW(eval_str("1 / 0"), EvalError);
  EXPECT_THROW(eval_str("1 % 0"), EvalError);
}

TEST(Eval, StringConcatViaPlus) {
  EXPECT_EQ(eval_str("\"a\" + \"b\"").as_string(), "ab");
}

TEST(Eval, TypeErrorsThrow) {
  EXPECT_THROW(eval_str("\"a\" * 2"), EvalError);
  EXPECT_THROW(eval_str("1 < \"a\""), EvalError);
}

// -------------------------------------------------------------- builtins --

TEST(Builtins, MatchesPrefix) {
  EXPECT_EQ(eval_str("f_matches(4.3.2.1, 4.3.2.0/24)").as_int(), 1);
  EXPECT_EQ(eval_str("f_matches(4.3.3.1, 4.3.2.0/24)").as_int(), 0);
  EXPECT_EQ(eval_str("f_matches(4.3.3.1, 4.3.2.0/23)").as_int(), 1);
}

TEST(Builtins, MatchesSolverWidensMinimally) {
  // Solving f_matches(4.3.3.1, P) == 1 from P = 4.3.2.0/24 must produce
  // 4.3.2.0/23 -- the exact SDN1 root-cause fix.
  const BuiltinInfo* info = FunctionRegistry::instance().find("f_matches");
  ASSERT_NE(info, nullptr);
  ASSERT_TRUE(static_cast<bool>(info->solver));
  const auto solved = info->solver(
      1, {Value(Ipv4(4, 3, 3, 1)), Value(*IpPrefix::parse("4.3.2.0/24"))},
      Value(1));
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(solved->as_prefix().to_string(), "4.3.2.0/23");
}

TEST(Builtins, MatchesSolverRefusesDesiredZero) {
  const BuiltinInfo* info = FunctionRegistry::instance().find("f_matches");
  const auto solved = info->solver(
      1, {Value(Ipv4(4, 3, 3, 1)), Value(*IpPrefix::parse("4.3.2.0/24"))},
      Value(0));
  EXPECT_FALSE(solved.has_value());
}

TEST(Builtins, OctetsAndPrefixConstruction) {
  EXPECT_EQ(eval_str("f_last_octet(4.3.2.9)").as_int(), 9);
  EXPECT_EQ(eval_str("f_octet(4.3.2.9, 0)").as_int(), 4);
  EXPECT_EQ(eval_str("f_prefix(4.3.2.9, 24)").as_prefix().to_string(),
            "4.3.2.0/24");
}

TEST(Builtins, HashAndPartitionAreDeterministic) {
  EXPECT_EQ(eval_str("f_hash(\"word\")"), eval_str("f_hash(\"word\")"));
  const auto p = eval_str("f_partition(\"word\", 4)").as_int();
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 4);
  EXPECT_THROW(eval_str("f_partition(\"word\", 0)"), EvalError);
}

TEST(Builtins, IpIntConversionsAreInverse) {
  EXPECT_EQ(eval_str("f_ip(f_ip_value(9.8.7.6))").as_ip().to_string(),
            "9.8.7.6");
}

TEST(Builtins, UnknownFunctionThrows) {
  EXPECT_THROW(eval_str("f_nope(1)"), EvalError);
}

// ---------------------------------------------------------------- parser --

constexpr const char* kSwitchProgram = R"(
  // Minimal one-switch forwarding model.
  table packet(3) base immutable event.
  table flowEntry(4) keys(0, 2) base mutable.
  table packetOut(3) derived event.

  rule r1 argmax Prio
    packetOut(@Next, Pkt, Dst) :-
      packet(@Sw, Pkt, Dst),
      flowEntry(@Sw, Prio, Prefix, Next),
      f_matches(Dst, Prefix) == 1.
)";

TEST(Parser, ParsesSwitchProgram) {
  const Program program = parse_program(kSwitchProgram);
  EXPECT_EQ(program.tables().size(), 3u);
  ASSERT_EQ(program.rules().size(), 1u);
  const Rule& rule = program.rules()[0];
  EXPECT_EQ(rule.name, "r1");
  ASSERT_TRUE(rule.argmax_var.has_value());
  EXPECT_EQ(*rule.argmax_var, "Prio");
  EXPECT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.constraints.size(), 1u);
  EXPECT_TRUE(program.table("packet").is_event());
  EXPECT_EQ(program.table("packet").mutability, Mutability::kImmutable);
  EXPECT_EQ(program.table("flowEntry").key_columns,
            (std::vector<std::size_t>{0, 2}));
}

TEST(Parser, RoundTripsThroughToString) {
  const Program program = parse_program(kSwitchProgram);
  const Program reparsed = parse_program(program.to_string());
  EXPECT_EQ(program.to_string(), reparsed.to_string());
}

TEST(Parser, AssignmentsAndConstants) {
  const Program program = parse_program(R"(
    table a(2) base.
    table b(3) derived.
    rule r1 b(@N, X2, "tag") :- a(@N, X), X2 := X * 2 + 1, X > 0.
  )");
  const Rule& rule = program.rules()[0];
  ASSERT_EQ(rule.assigns.size(), 1u);
  EXPECT_EQ(rule.assigns[0].var, "X2");
  EXPECT_EQ(rule.constraints.size(), 1u);
}

TEST(Parser, AnonymousVariablesGetFreshNames) {
  const Program program = parse_program(R"(
    table a(3) base.
    table b(2) derived.
    rule r1 b(@N, 1) :- a(@N, _, _).
  )");
  const BodyAtom& atom = program.rules()[0].body[0];
  EXPECT_NE(atom.args[1].var, atom.args[2].var);
}

TEST(Parser, RejectsNonLocalizedRule) {
  EXPECT_THROW(parse_program(R"(
    table a(2) base.
    table b(2) base.
    table c(2) derived.
    rule r1 c(@N, 1) :- a(@N, X), b(@M, X).
  )"),
               ProgramError);
}

TEST(Parser, RejectsUnboundHeadVariable) {
  EXPECT_THROW(parse_program(R"(
    table a(2) base.
    table c(2) derived.
    rule r1 c(@N, Y) :- a(@N, X).
  )"),
               ProgramError);
}

TEST(Parser, RejectsHeadIntoBaseTable) {
  EXPECT_THROW(parse_program(R"(
    table a(2) base.
    table b(2) base.
    rule r1 b(@N, X) :- a(@N, X).
  )"),
               ProgramError);
}

TEST(Parser, RejectsArityMismatch) {
  EXPECT_THROW(parse_program(R"(
    table a(2) base.
    table c(2) derived.
    rule r1 c(@N, X, X) :- a(@N, X).
  )"),
               ProgramError);
}

TEST(Parser, RejectsDuplicateRuleNames) {
  EXPECT_THROW(parse_program(R"(
    table a(2) base.
    table c(2) derived.
    rule r1 c(@N, X) :- a(@N, X).
    rule r1 c(@N, X) :- a(@N, X).
  )"),
               ProgramError);
}

TEST(Parser, RejectsUnboundAssignmentInput) {
  EXPECT_THROW(parse_program(R"(
    table a(2) base.
    table c(2) derived.
    rule r1 c(@N, Y) :- a(@N, X), Y := Z + 1.
  )"),
               ProgramError);
}

TEST(Program, RulesListeningToIndex) {
  const Program program = parse_program(kSwitchProgram);
  EXPECT_EQ(program.rules_listening_to("packet").size(), 1u);
  EXPECT_EQ(program.rules_listening_to("flowEntry").size(), 1u);
  EXPECT_TRUE(program.rules_listening_to("packetOut").empty());
}

}  // namespace
}  // namespace dp
