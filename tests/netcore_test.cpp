// Tests for the NetCore front-end: parsing, classifier compilation, and an
// end-to-end check that a NetCore version of the Figure-1 policy drives the
// SDN1 diagnosis to the same root cause.
#include <gtest/gtest.h>

#include "diffprov/diffprov.h"
#include "netcore/netcore.h"
#include "sdn/scenario.h"

namespace dp::netcore {
namespace {

TEST(NetCoreParser, ParsesTheFigure1Policy) {
  const auto program = parse_netcore(R"(
    // The Figure-1 steering policy on sw2.
    switch sw2 {
      if src in 4.3.2.0/24 then fwd(sw6) else fwd(sw3)
    }
    switch sw6 {
      mirror(w1, d1)
    }
  )");
  ASSERT_EQ(program.size(), 2u);
  EXPECT_EQ(program[0].switch_name, "sw2");
  EXPECT_EQ(program[0].policy->to_string(),
            "if src in 4.3.2.0/24 then fwd(sw6) else fwd(sw3)");
  EXPECT_EQ(program[1].policy->to_string(), "mirror(w1, d1)");
}

TEST(NetCoreParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_netcore("switch s {"), NetCoreError);
  EXPECT_THROW(parse_netcore("switch s { nope }"), NetCoreError);
  EXPECT_THROW(parse_netcore("switch s { if src in bogus then drop else drop }"),
               NetCoreError);
  EXPECT_THROW(parse_netcore(""), NetCoreError);
}

TEST(NetCoreCompiler, ClassifiesIfThenElse) {
  const auto program = parse_netcore(
      "switch s { if src in 4.3.2.0/24 then fwd(a1) else fwd(b1) }");
  const auto classifier = compile_policy(*program[0].policy);
  ASSERT_EQ(classifier.size(), 2u);
  EXPECT_EQ(classifier[0].src.to_string(), "4.3.2.0/24");
  EXPECT_EQ(classifier[0].action, "a1");
  EXPECT_EQ(classifier[1].src.to_string(), "0.0.0.0/0");
  EXPECT_EQ(classifier[1].action, "b1");
}

TEST(NetCoreCompiler, NestedBranchesRestrictPrefixes) {
  const auto program = parse_netcore(R"(
    switch s {
      if src in 10.0.0.0/8 then
        if src in 10.1.0.0/16 then drop else fwd(a1)
      else mirror(b1, c1)
    }
  )");
  const auto classifier = compile_policy(*program[0].policy);
  ASSERT_EQ(classifier.size(), 3u);
  EXPECT_EQ(classifier[0], (ClassifierEntry{*IpPrefix::parse("10.1.0.0/16"),
                                            "dr"}));
  EXPECT_EQ(classifier[1],
            (ClassifierEntry{*IpPrefix::parse("10.0.0.0/8"), "a1"}));
  EXPECT_EQ(classifier[2],
            (ClassifierEntry{*IpPrefix::parse("0.0.0.0/0"), "b1+c1"}));
}

TEST(NetCoreCompiler, DisjointInnerPredicateVanishes) {
  const auto program = parse_netcore(R"(
    switch s {
      if src in 10.0.0.0/8 then
        if src in 20.0.0.0/8 then drop else fwd(a1)
      else fwd(b1)
    }
  )");
  const auto classifier = compile_policy(*program[0].policy);
  // The inner 20/8 branch is unreachable inside 10/8.
  ASSERT_EQ(classifier.size(), 2u);
  EXPECT_EQ(classifier[0].action, "a1");
  EXPECT_EQ(classifier[1].action, "b1");
}

TEST(NetCoreEndToEnd, Figure1PolicyReproducesSdn1Diagnosis) {
  // Rebuild SDN1 with the control program written in NetCore instead of
  // hand-made policyRoute facts: DiffProv must find the same root cause.
  sdn::Scenario s = sdn::sdn1();
  // Strip the hand-made policyRoute records; keep links, liveness, packets.
  EventLog stripped;
  for (const LogRecord& record : s.log.records()) {
    if (record.tuple().table() != "policyRoute") stripped.append(record);
  }
  const auto program = parse_netcore(R"(
    switch sw1 { fwd(sw2) }
    switch sw2 {
      // BUG: the operator meant 4.3.2.0/23.
      if src in 4.3.2.0/24 then fwd(sw6) else fwd(sw3)
    }
    switch sw3 { fwd(sw4) }
    switch sw4 { fwd(sw5) }
    switch sw5 { fwd(w2) }
    switch sw6 { mirror(w1, d1) }
  )");
  emit_policy_routes(program, stripped);
  s.log = std::move(stripped);

  LogReplayProvider good_provider(s.program, s.topology, s.log);
  const BadRun run = good_provider.replay_bad({});
  const auto good = locate_tree(*run.graph, s.good_event);
  ASSERT_TRUE(good.has_value());
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good, s.bad_event);
  ASSERT_TRUE(result.ok()) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u);
  // Same fix as the native-NDlog SDN1: widen the compiled prefix to /23.
  EXPECT_NE(result.changes[0].to_string().find("4.3.2.0/23"),
            std::string::npos)
      << result.to_string();
}

}  // namespace
}  // namespace dp::netcore
