// Tests for the observability layer (src/obs): metrics semantics, span
// nesting under concurrency, dump well-formedness (parsed back with the
// checker CI uses), and the two cross-variant guarantees -- tracing on/off
// changes nothing observable, and both join evaluators report identical
// semantic counters through the registry facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "diffprov/diffprov.h"
#include "ndlog/parser.h"
#include "obs/flightrec.h"
#include "obs/json_check.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/sketch.h"
#include "util/logging.h"
#include "provenance/vertex.h"
#include "replay/replay_engine.h"
#include "runtime/metrics_observer.h"
#include "sdn/scenario.h"

namespace dp {
namespace {

// ----------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("dp.test.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(&registry.counter("dp.test.count"), &c);

  obs::Gauge& g = registry.gauge("dp.test.depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
  g.set_max(3);  // below current: no change
  EXPECT_EQ(g.value(), 5);
  g.set_max(9);
  EXPECT_EQ(g.value(), 9);

  EXPECT_EQ(registry.size(), 2u);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(registry.size(), 2u);  // instruments survive a reset
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // le semantics: lands in the 1.0 bucket
  h.observe(1.5);    // <= 10
  h.observe(10.0);   // in the 10.0 bucket
  h.observe(100.0);  // in the 100.0 bucket
  h.observe(100.5);  // overflow -> +Inf
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 100.5);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  for (std::uint64_t b : h.bucket_counts()) EXPECT_EQ(b, 0u);
}

TEST(Metrics, PrometheusDumpHasHistogramSeries) {
  obs::MetricsRegistry registry;
  registry.counter("dp.test.total").inc(3);
  registry.histogram("dp.test.lat_us", {1.0, 10.0}).observe(5.0);
  const std::string text = registry.to_prometheus();
  // Dots become underscores; histograms expose cumulative le buckets.
  EXPECT_NE(text.find("dp_test_total 3"), std::string::npos);
  EXPECT_NE(text.find("dp_test_lat_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dp_test_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dp_test_lat_us_count 1"), std::string::npos);
}

TEST(Metrics, JsonDumpParsesBack) {
  obs::MetricsRegistry registry;
  registry.counter("dp.test.a").inc();
  registry.gauge("dp.test.b").set(-4);
  registry.histogram("dp.test.c", {2.0}).observe(1.0);
  const std::string json = registry.to_json();
  EXPECT_EQ(obs::json_error(json), std::nullopt) << json;
  const obs::MetricsCheck check = obs::check_metrics_json(json);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.series, 3u);
  EXPECT_TRUE(check.names.count("dp.test.a"));
  EXPECT_TRUE(check.names.count("dp.test.b"));
  EXPECT_TRUE(check.names.count("dp.test.c"));
}

TEST(Metrics, SanitizeMetricSegment) {
  EXPECT_EQ(obs::sanitize_metric_segment("rule-1 (v2)"), "rule_1__v2_");
  EXPECT_EQ(obs::sanitize_metric_segment("ok_name.x"), "ok_name.x");
}

// ------------------------------------------------------------- spans --

TEST(Trace, SpanRecordsCompleteEvent) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span span(tracer, "dp.test.work", "test");
  }
  ASSERT_EQ(tracer.size(), 1u);
  const obs::TraceEvent event = tracer.events().front();
  EXPECT_EQ(event.name, "dp.test.work");
  EXPECT_STREQ(event.category, "test");
}

TEST(Trace, DisabledTracerRecordsNothingAndEndIsIdempotent) {
  obs::Tracer tracer;  // disabled by default
  obs::Span inert(tracer, "dp.test.skipped");
  EXPECT_FALSE(inert.active());
  inert.end();
  EXPECT_EQ(tracer.size(), 0u);

  tracer.set_enabled(true);
  obs::Span span(tracer, "dp.test.once");
  span.end();
  span.end();  // second end must not double-record
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Trace, ConcurrentSpansNestByTimeContainmentPerThread) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIterations = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kIterations; ++i) {
        obs::Span outer(tracer, "outer");
        obs::Span inner(tracer, "inner");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), std::size_t{kThreads} * kIterations * 2);
  std::set<std::uint32_t> tids;
  std::size_t inner_count = 0;
  for (const obs::TraceEvent& event : events) {
    tids.insert(event.tid);
    if (event.name != "inner") continue;
    ++inner_count;
    // Stack discipline: some same-thread outer span must contain it.
    bool contained = false;
    for (const obs::TraceEvent& outer : events) {
      if (outer.tid != event.tid || outer.name != "outer") continue;
      if (outer.start_us <= event.start_us &&
          outer.start_us + outer.duration_us >=
              event.start_us + event.duration_us) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "inner span escaped every outer span";
  }
  EXPECT_EQ(tids.size(), std::size_t{kThreads});
  EXPECT_EQ(inner_count, std::size_t{kThreads} * kIterations);
}

TEST(Trace, ChromeJsonParsesBackWithEscapedNames) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span a(tracer, "plain");
    obs::Span b(tracer, "we\"ird\\name");
    obs::Span c(tracer, "ctrl\nchar");  // control chars may be replaced,
                                        // but must never break the JSON
  }
  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(obs::json_error(json), std::nullopt) << json;
  const obs::TraceCheck check = obs::check_chrome_trace(json);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 3u);
  EXPECT_TRUE(check.names.count("plain"));
  EXPECT_TRUE(check.names.count("we\"ird\\name"));
}

TEST(Trace, JsonCheckerRejectsMalformedInput) {
  EXPECT_TRUE(obs::json_error("{\"truncated\": ").has_value());
  EXPECT_TRUE(obs::json_error("{\"trailing\": 1,}").has_value());
  EXPECT_FALSE(obs::check_chrome_trace("{\"noTraceEvents\": []}").ok);
  EXPECT_FALSE(obs::check_metrics_json("[1, 2]").ok);
}

// ----------------------------------------------- trace propagation --

TEST(Trace, TraceIdParsingAcceptsOnlyNonzeroHex) {
  std::uint64_t id = 0;
  ASSERT_TRUE(obs::parse_trace_id("deadbeef", id));
  EXPECT_EQ(id, 0xdeadbeefull);
  ASSERT_TRUE(obs::parse_trace_id("1", id));
  EXPECT_EQ(id, 1u);
  ASSERT_TRUE(obs::parse_trace_id("ffffffffffffffff", id));
  EXPECT_EQ(id, ~0ull);
  ASSERT_TRUE(obs::parse_trace_id("DeadBeef", id));  // case-insensitive
  EXPECT_EQ(id, 0xdeadbeefull);

  id = 42;
  EXPECT_FALSE(obs::parse_trace_id("", id));
  EXPECT_FALSE(obs::parse_trace_id("0", id));  // zero means "no context"
  EXPECT_FALSE(obs::parse_trace_id("00000", id));
  EXPECT_FALSE(obs::parse_trace_id("12g4", id));
  EXPECT_FALSE(obs::parse_trace_id("1ffffffffffffffff", id));  // 17 digits
  EXPECT_EQ(id, 42u) << "failed parses must leave the output untouched";

  // format is the inverse of parse.
  EXPECT_EQ(obs::format_trace_id(0xdeadbeefull), "deadbeef");
  std::uint64_t back = 0;
  ASSERT_TRUE(obs::parse_trace_id(obs::format_trace_id(0xabc123ull), back));
  EXPECT_EQ(back, 0xabc123ull);
}

TEST(Trace, SpansInheritTheInstalledContextAndChainParentIds) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  constexpr std::uint64_t kTraceId = 0x5eed;
  {
    // The thread-hop idiom: the worker installs the client's context, then
    // every span below inherits the trace id and chains parentage.
    obs::ScopedTraceContext scope({kTraceId, 0});
    obs::Span outer(tracer, "outer");
    obs::Span inner(tracer, "inner");
  }
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close innermost-first.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  ASSERT_EQ(inner.name, "inner");
  ASSERT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.trace_id, kTraceId);
  EXPECT_EQ(outer.trace_id, kTraceId);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_EQ(outer.parent_span_id, 0u) << "the installed context had no span";

  // The scope restored the previous (empty) context: a span after it has
  // no trace id.
  {
    obs::Span after(tracer, "after");
  }
  EXPECT_EQ(tracer.events().back().trace_id, 0u);
}

TEST(Trace, ChromeJsonCarriesTraceContextArgs) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::ScopedTraceContext scope({0xdeadbeef, 0});
    obs::Span span(tracer, "work");
  }
  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(obs::json_error(json), std::nullopt) << json;
  EXPECT_NE(json.find("\"trace_id\": \"deadbeef\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\""), std::string::npos);
}

// -------------------------------------------------- flight recorder --

TEST(FlightRec, RecordsSpansAndLogsWithTruncation) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.clear();
  recorder.set_enabled(false);
  recorder.record_span("dropped", 0, 0);
  EXPECT_TRUE(recorder.snapshot().empty()) << "disabled recorder must drop";

  recorder.set_enabled(true);
  recorder.record_span("short", 0xabc, 7);
  recorder.record_log(2, "a warning line");
  const std::string long_name(100, 'x');
  recorder.record_span(long_name, 0, 1);
  recorder.set_enabled(false);

  const std::vector<obs::FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  bool saw_span = false, saw_log = false, saw_truncated = false;
  for (const obs::FlightEvent& event : events) {
    if (std::string(event.name) == "short") {
      saw_span = true;
      EXPECT_EQ(event.kind, obs::FlightEvent::Kind::kSpan);
      EXPECT_EQ(event.trace_id, 0xabcu);
      EXPECT_EQ(event.duration_us, 7u);
    } else if (std::string(event.name) == "a warning line") {
      saw_log = true;
      EXPECT_EQ(event.kind, obs::FlightEvent::Kind::kLog);
      EXPECT_EQ(event.level, 2u);
    } else {
      saw_truncated = true;
      EXPECT_EQ(std::string(event.name).size(), obs::kFlightNameCap);
      EXPECT_EQ(std::string(event.name), long_name.substr(0, obs::kFlightNameCap));
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_log);
  EXPECT_TRUE(saw_truncated);

  recorder.clear();
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRec, RingKeepsOnlyTheLastNEventsPerThread) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  const std::size_t total = obs::kFlightRingSize + 50;
  for (std::size_t i = 0; i < total; ++i) {
    recorder.record_span("evt" + std::to_string(i), 0, i);
  }
  recorder.set_enabled(false);
  const std::vector<obs::FlightEvent> events = recorder.snapshot();
  EXPECT_EQ(events.size(), obs::kFlightRingSize);
  // The survivors are the *latest* kFlightRingSize events.
  std::set<std::string> names;
  for (const obs::FlightEvent& event : events) names.insert(event.name);
  EXPECT_TRUE(names.count("evt" + std::to_string(total - 1)));
  EXPECT_FALSE(names.count("evt0"));
  recorder.clear();
}

TEST(FlightRec, JsonDumpParsesBackAndLogHookCaptures) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  obs::FlightRecorder::install_log_hook();
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  DP_WARN << "hooked " << 123;
  set_log_level(saved);
  set_log_sink(nullptr);
  recorder.record_span("we\"ird\\span", 0x99, 5);
  recorder.set_enabled(false);

  const std::string json = recorder.to_json();
  EXPECT_EQ(obs::json_error(json), std::nullopt) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must stay single-line";
  EXPECT_NE(json.find("\"ring_size\""), std::string::npos);

  bool saw_hooked = false;
  for (const obs::FlightEvent& event : recorder.snapshot()) {
    if (std::string(event.name) == "hooked 123") {
      saw_hooked = true;
      EXPECT_EQ(event.kind, obs::FlightEvent::Kind::kLog);
    }
  }
  EXPECT_TRUE(saw_hooked) << "DP_WARN line must reach the recorder via the "
                             "log sink";
  recorder.clear();
}

TEST(FlightRec, ConcurrentWritersAndSnapshottersAreSafe) {
  // The TSan target: writer threads hammer the ring while a reader thread
  // snapshots and serializes continuously. Every event a snapshot returns
  // must be internally consistent (never a half-written slot).
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);

  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const obs::FlightEvent& event : recorder.snapshot()) {
        const std::string name(event.name);
        // Writer i records "w<i>" spans with trace_id 100+i and logs
        // "log<i>"; anything else is a torn slot.
        if (event.kind == obs::FlightEvent::Kind::kSpan) {
          if (name.size() != 2 || name[0] != 'w' ||
              event.trace_id != 100u + (name[1] - '0')) {
            ++inconsistent;
          }
        } else if (name.size() != 4 || name.compare(0, 3, "log") != 0) {
          ++inconsistent;
        }
      }
      (void)recorder.to_json();
    }
  });
  std::vector<std::thread> writers;
  std::atomic<int> writers_done{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, &writers_done, w] {
      const std::string span_name = "w" + std::to_string(w);
      const std::string log_name = "log" + std::to_string(w);
      for (int i = 0; i < kEventsPerWriter; ++i) {
        recorder.record_span(span_name, 100 + w, i);
        if (i % 8 == 0) recorder.record_log(1, log_name);
      }
      // Stay alive (ring lease held) until every writer has recorded, so
      // the four threads provably used four distinct rings -- otherwise a
      // fast writer's returned ring gets reused and overwritten.
      ++writers_done;
      while (writers_done.load() < kWriters) std::this_thread::yield();
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  reader.join();
  recorder.set_enabled(false);

  EXPECT_EQ(inconsistent.load(), 0);
  // Rings were leased per writer thread: the final snapshot holds the last
  // kFlightRingSize events of each, still visible after the threads exited.
  EXPECT_EQ(recorder.snapshot().size(), kWriters * obs::kFlightRingSize);
  recorder.clear();
}

// ------------------------------------------- prometheus text checker --

TEST(Metrics, PrometheusCheckerAcceptsRegistryOutput) {
  obs::MetricsRegistry registry;
  registry.counter("dp.test.total").inc(3);
  registry.gauge("dp.test.depth").set(-2);
  registry.histogram("dp.test.lat_us", obs::latency_us_bounds()).observe(5.0);
  registry.histogram("dp.test.lat_us", obs::latency_us_bounds()).observe(2e7);

  const obs::PrometheusCheck check =
      obs::check_prometheus_text(registry.to_prometheus());
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.series, 3u) << "a histogram counts as one series";
  EXPECT_TRUE(check.names.count("dp_test_total"));
  EXPECT_TRUE(check.names.count("dp_test_depth"));
  EXPECT_TRUE(check.names.count("dp_test_lat_us"));
}

TEST(Metrics, PrometheusCheckerRejectsBrokenHistograms) {
  // le bounds out of order.
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"10\"} 1\nh_bucket{le=\"1\"} 1\n"
                   "h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n")
                   .ok);
  // Cumulative counts must be non-decreasing.
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"1\"} 5\nh_bucket{le=\"10\"} 3\n"
                   "h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n")
                   .ok);
  // +Inf bucket must equal _count.
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n"
                   "h_sum 2\nh_count 3\n")
                   .ok);
  // Missing +Inf bucket.
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n")
                   .ok);
  // Latency sums may not go negative.
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE h_us histogram\n"
                   "h_us_bucket{le=\"1\"} 1\nh_us_bucket{le=\"+Inf\"} 1\n"
                   "h_us_sum -4\nh_us_count 1\n")
                   .ok);
  // Counters may not go negative, and TYPE lines may not repeat.
  EXPECT_FALSE(obs::check_prometheus_text("# TYPE c counter\nc -1\n").ok);
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE c counter\n# TYPE c counter\nc 1\n")
                   .ok);

  // The well-formed version of the same text passes.
  const obs::PrometheusCheck good = obs::check_prometheus_text(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"10\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_sum 40\nh_count 5\n"
      "# TYPE c counter\nc 7\n");
  EXPECT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.series, 2u);
}

// ----------------------------------------------- cross-variant tests --

// One full SDN1 diagnosis; returns every observable artifact as one string.
std::string diagnose_sdn1_fingerprint() {
  sdn::Scenario s = sdn::sdn1();
  LogReplayProvider provider(s.program, s.topology, s.log);
  const BadRun run = provider.replay_bad({});
  const auto good_tree = locate_tree(*run.graph, s.good_event);
  const auto bad_tree = locate_tree(*run.graph, s.bad_event);
  if (!good_tree || !bad_tree) return "tree missing";
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good_tree, s.bad_event);
  return good_tree->to_text() + "\n---\n" + bad_tree->to_text() + "\n---\n" +
         result.to_string();
}

TEST(Obs, TracingOnOffIsByteIdenticalForProvenanceAndDiagnosis) {
  obs::default_tracer().set_enabled(false);
  const std::string off = diagnose_sdn1_fingerprint();

  obs::default_tracer().set_enabled(true);
  const std::string on = diagnose_sdn1_fingerprint();
  obs::default_tracer().set_enabled(false);
  obs::default_tracer().clear();

  EXPECT_EQ(off, on);
  EXPECT_NE(off.find("DiffProv: success"), std::string::npos) << off;
}

TEST(Obs, PlannedAndFullScanEvaluatorsAgreeThroughRegistryFacade) {
  sdn::Scenario s = sdn::sdn1();
  ReplayOptions planned;
  planned.engine_config.use_join_plans = true;
  ReplayOptions fullscan;
  fullscan.engine_config.use_join_plans = false;
  ReplayResult a = replay(s.program, s.topology, s.log, {}, planned);
  ReplayResult b = replay(s.program, s.topology, s.log, {}, fullscan);

  obs::MetricsRegistry& ra = a.engine->metrics();
  obs::MetricsRegistry& rb = b.engine->metrics();
  // Semantic counters must agree exactly (join-mechanics counters --
  // index_probes, tuples_scanned -- differ by design).
  std::vector<std::string> names = {
      "dp.runtime.base_inserts",     "dp.runtime.base_deletes",
      "dp.runtime.derivations",      "dp.runtime.underivations",
      "dp.runtime.remote_messages",  "dp.runtime.events_processed",
  };
  for (const Rule& rule : s.program.rules()) {
    names.push_back("dp.runtime.rule_firings." +
                    obs::sanitize_metric_segment(rule.name));
  }
  for (const std::string& name : names) {
    EXPECT_EQ(ra.counter(name).value(), rb.counter(name).value()) << name;
  }
  EXPECT_GT(ra.counter("dp.runtime.derivations").value(), 0u);

  // The Stats struct is a facade over the same numbers.
  EXPECT_EQ(a.engine->stats().derivations,
            ra.counter("dp.runtime.derivations").value());
  EXPECT_EQ(a.engine->stats().events_processed,
            ra.counter("dp.runtime.events_processed").value());
}

TEST(Obs, BatchedAndRowEvaluatorsAgreeThroughRegistryFacade) {
  sdn::Scenario s = sdn::sdn1();
  ReplayOptions batched;
  batched.engine_config.use_join_plans = true;
  batched.engine_config.use_batch_exec = true;
  ReplayOptions row;
  row.engine_config.use_join_plans = true;
  row.engine_config.use_batch_exec = false;
  ReplayResult a = replay(s.program, s.topology, s.log, {}, batched);
  ReplayResult b = replay(s.program, s.topology, s.log, {}, row);

  obs::MetricsRegistry& ra = a.engine->metrics();
  obs::MetricsRegistry& rb = b.engine->metrics();
  // Unlike the fullscan comparison above, batching keeps even the
  // join-mechanics counters equal: one probe per delta-side row, one scan
  // per candidate, one match per survivor, in both execution shapes.
  std::vector<std::string> names = {
      "dp.runtime.base_inserts",     "dp.runtime.base_deletes",
      "dp.runtime.derivations",      "dp.runtime.underivations",
      "dp.runtime.remote_messages",  "dp.runtime.events_processed",
      "dp.runtime.index_probes",     "dp.runtime.tuples_scanned",
      "dp.runtime.tuples_matched",
  };
  for (const Rule& rule : s.program.rules()) {
    names.push_back("dp.runtime.rule_firings." +
                    obs::sanitize_metric_segment(rule.name));
  }
  for (const std::string& name : names) {
    EXPECT_EQ(ra.counter(name).value(), rb.counter(name).value()) << name;
  }

  // The batch-shape metrics exist only on the batched engine and are
  // internally consistent: batched events never exceed the total processed
  // (inadmissible events -- deletes, displacing inserts -- run solo outside
  // any batch), and the size histogram saw every batch.
  const std::uint64_t batches = ra.counter("dp.engine.batch.batches").value();
  const std::uint64_t events = ra.counter("dp.engine.batch.events").value();
  EXPECT_GT(batches, 0u);
  EXPECT_GE(events, batches);
  EXPECT_LE(events, ra.counter("dp.runtime.events_processed").value());
  EXPECT_EQ(ra.histogram("dp.engine.batch.size").count(), batches);
  EXPECT_EQ(rb.counter("dp.engine.batch.batches").value(), 0u);
}

TEST(Obs, ProvenanceVertexCountsPublishPerKind) {
  // replay() publishes graph growth into the default registry (the registry
  // is shared process-wide, so we measure deltas around the call).
  obs::MetricsRegistry& registry = obs::default_registry();
  const std::uint64_t vertices_before =
      registry.counter("dp.prov.vertices").value();
  const std::uint64_t derives_before =
      registry.counter("dp.prov.vertex.derive").value();

  sdn::Scenario s = sdn::sdn1();
  ReplayResult run = replay(s.program, s.topology, s.log, {}, {});
  ProvenanceGraph& graph = run.recorder->graph();

  const auto& by_kind = graph.counters().by_kind;
  std::uint64_t total = 0;
  for (std::uint64_t n : by_kind) total += n;
  EXPECT_EQ(total, graph.size());
  EXPECT_GT(by_kind[static_cast<std::size_t>(VertexKind::kDerive)], 0u);

  EXPECT_EQ(registry.counter("dp.prov.vertices").value() - vertices_before,
            total);
  EXPECT_EQ(registry.counter("dp.prov.vertex.derive").value() - derives_before,
            by_kind[static_cast<std::size_t>(VertexKind::kDerive)]);
  // Delta-publish: republishing an unchanged graph adds nothing.
  graph.publish_metrics(registry);
  EXPECT_EQ(registry.counter("dp.prov.vertices").value() - vertices_before,
            total);
}

TEST(Obs, MetricsObserverCountsPerTableActivity) {
  Program program = parse_program(R"(
    table base(2) base mutable keys(0).
    table out(2) derived.
    rule r out(@N, V) :- base(@N, V).
  )");
  Engine engine(program, {});
  obs::MetricsRegistry registry;
  MetricsObserver observer(registry);
  engine.add_observer(&observer);

  engine.schedule_insert(Tuple("base", {"n1", 1}), 0);
  engine.run();
  EXPECT_EQ(registry.counter("dp.runtime.table.base.inserts").value(), 1u);
  EXPECT_EQ(registry.counter("dp.runtime.table.out.derives").value(), 1u);

  // A key upsert displaces the old row: one delete, one underive.
  engine.schedule_insert(Tuple("base", {"n1", 2}), 1);
  engine.run();
  EXPECT_EQ(registry.counter("dp.runtime.table.base.inserts").value(), 2u);
  EXPECT_EQ(registry.counter("dp.runtime.table.base.deletes").value(), 1u);
  EXPECT_EQ(registry.counter("dp.runtime.table.out.underives").value(), 1u);
}

TEST(Obs, EngineRecordsRuleSpansWhenTracingIsEnabled) {
  obs::default_tracer().clear();
  obs::default_tracer().set_enabled(true);
  sdn::Scenario s = sdn::sdn1();
  ReplayResult run = replay(s.program, s.topology, s.log, {}, {});
  obs::default_tracer().set_enabled(false);

  std::size_t rule_spans = 0;
  bool saw_run_span = false;
  for (const obs::TraceEvent& event : obs::default_tracer().events()) {
    if (event.name.rfind("rule:", 0) == 0) ++rule_spans;
    if (event.name == "dp.runtime.run") saw_run_span = true;
  }
  obs::default_tracer().clear();
  EXPECT_GT(rule_spans, 0u);
  EXPECT_TRUE(saw_run_span);
  // Latency samples ride along with the spans.
  EXPECT_GT(run.engine->metrics().histogram("dp.runtime.rule_fire_us").count(),
            0u);
}

// ---------------------------------------------------- quantile sketches --

TEST(Sketch, RandomizedRelativeErrorVersusExactQuantiles) {
  // Log-uniform values over nine decades: every octave of the bucket table
  // gets exercised, and the geometric-midpoint representative must stay
  // within the advertised relative error of the exact order statistic.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> exponent(-3.0, 6.0);
  obs::QuantileSketch sketch;
  std::vector<double> values;
  constexpr std::size_t kN = 20000;
  values.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = std::pow(10.0, exponent(rng));
    values.push_back(v);
    sketch.observe(v);
  }
  std::sort(values.begin(), values.end());

  EXPECT_EQ(sketch.count(), kN);
  EXPECT_DOUBLE_EQ(sketch.min(), values.front());
  EXPECT_DOUBLE_EQ(sketch.max(), values.back());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(kN)));
    const double exact = values[std::max<std::size_t>(rank, 1) - 1];
    const double estimate = sketch.quantile(q);
    EXPECT_LE(std::abs(estimate - exact) / exact,
              obs::QuantileSketch::kMaxRelativeError)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
  // Estimates never escape the observed range, whatever the bucket mid says.
  EXPECT_GE(sketch.quantile(0.0), values.front());
  EXPECT_LE(sketch.quantile(1.0), values.back());

  sketch.reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
}

TEST(Sketch, MergeIsAssociativeAndMatchesDirectObservation) {
  auto fill = [](obs::QuantileSketch& s, std::uint64_t seed, double scale) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(1.0, 1000.0);
    for (int i = 0; i < 5000; ++i) s.observe(dist(rng) * scale);
  };
  obs::QuantileSketch a, b, c, all;
  fill(a, 1, 1.0);
  fill(b, 2, 10.0);
  fill(c, 3, 0.1);
  fill(all, 1, 1.0);
  fill(all, 2, 10.0);
  fill(all, 3, 0.1);

  obs::QuantileSketch left;  // (a + b) + c
  left.merge(a);
  left.merge(b);
  left.merge(c);
  obs::QuantileSketch bc;
  bc.merge(b);
  bc.merge(c);
  obs::QuantileSketch right;  // a + (b + c)
  right.merge(a);
  right.merge(bc);

  // Bucket counts are additive integers, so both groupings -- and direct
  // observation of the union -- agree bit for bit on every statistic.
  const obs::QuantileSketch::Snapshot l = left.snapshot();
  const obs::QuantileSketch::Snapshot r = right.snapshot();
  const obs::QuantileSketch::Snapshot d = all.snapshot();
  EXPECT_EQ(l.count, r.count);
  EXPECT_EQ(l.count, d.count);
  EXPECT_DOUBLE_EQ(l.min, r.min);
  EXPECT_DOUBLE_EQ(l.max, r.max);
  for (const auto& [lq, rq, dq] :
       {std::tuple{l.p50, r.p50, d.p50}, std::tuple{l.p95, r.p95, d.p95},
        std::tuple{l.p99, r.p99, d.p99},
        std::tuple{l.p999, r.p999, d.p999}}) {
    EXPECT_DOUBLE_EQ(lq, rq);
    EXPECT_DOUBLE_EQ(lq, dq);
  }
}

TEST(Sketch, EightThreadConcurrentObserveLosesNothing) {
  obs::QuantileSketch sketch;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sketch, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sketch.observe(static_cast<double>((t * kPerThread + i) % 1000 + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(sketch.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(sketch.min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 1000.0);
  // The per-thread value streams are uniform over [1, 1000]; the pooled
  // median must land near 500 regardless of interleaving.
  EXPECT_NEAR(sketch.quantile(0.5), 500.0, 500.0 * 0.02);
}

TEST(Sketch, RegistryExportsPassBothCheckers) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist =
      registry.histogram("dp.test.lat_us", obs::latency_us_bounds());
  obs::QuantileSketch& sketch = registry.sketch("dp.test.lat_us");
  for (const double v : {3.0, 70.0, 900.0, 12000.0}) {
    hist.observe(v);
    sketch.observe(v);
  }

  const obs::PrometheusCheck prom =
      obs::check_prometheus_text(registry.to_prometheus());
  ASSERT_TRUE(prom.ok) << prom.error;
  EXPECT_TRUE(prom.names.count("dp_test_lat_us_p50"));
  EXPECT_TRUE(prom.names.count("dp_test_lat_us_p999"));
  EXPECT_TRUE(prom.names.count("dp_test_lat_us_sketch_count"));

  const obs::MetricsCheck json = obs::check_metrics_json(registry.to_json());
  ASSERT_TRUE(json.ok) << json.error;

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("(sketch)"), std::string::npos) << text;
}

TEST(Sketch, PrometheusCheckerValidatesQuantileSeries) {
  const char* good =
      "# TYPE s_p50 gauge\ns_p50 1\n"
      "# TYPE s_p95 gauge\ns_p95 2\n"
      "# TYPE s_p99 gauge\ns_p99 3\n"
      "# TYPE s_p999 gauge\ns_p999 4\n"
      "# TYPE s_max gauge\ns_max 5\n"
      "# TYPE s_sketch_count counter\ns_sketch_count 10\n";
  EXPECT_TRUE(obs::check_prometheus_text(good).ok)
      << obs::check_prometheus_text(good).error;

  // Non-monotone quantiles (p99 < p95).
  const obs::PrometheusCheck nonmono = obs::check_prometheus_text(
      "# TYPE s_p50 gauge\ns_p50 1\n"
      "# TYPE s_p95 gauge\ns_p95 3\n"
      "# TYPE s_p99 gauge\ns_p99 2\n"
      "# TYPE s_p999 gauge\ns_p999 4\n"
      "# TYPE s_max gauge\ns_max 5\n"
      "# TYPE s_sketch_count counter\ns_sketch_count 10\n");
  EXPECT_FALSE(nonmono.ok);
  EXPECT_NE(nonmono.error.find("monotone"), std::string::npos)
      << nonmono.error;

  // The tail estimate may not exceed the observed max.
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE s_p50 gauge\ns_p50 1\n"
                   "# TYPE s_p95 gauge\ns_p95 2\n"
                   "# TYPE s_p99 gauge\ns_p99 3\n"
                   "# TYPE s_p999 gauge\ns_p999 9\n"
                   "# TYPE s_max gauge\ns_max 5\n"
                   "# TYPE s_sketch_count counter\ns_sketch_count 10\n")
                   .ok);

  // A _p999 series without its lower quantiles is a broken export.
  EXPECT_FALSE(obs::check_prometheus_text(
                   "# TYPE s_p50 gauge\ns_p50 1\n"
                   "# TYPE s_p99 gauge\ns_p99 3\n"
                   "# TYPE s_p999 gauge\ns_p999 4\n"
                   "# TYPE s_max gauge\ns_max 5\n"
                   "# TYPE s_sketch_count counter\ns_sketch_count 10\n")
                   .ok);

  // Sketch and paired histogram disagreeing on the sample count (beyond the
  // lock-free scrape-skew allowance) is flagged.
  const obs::PrometheusCheck diverged = obs::check_prometheus_text(
      "# TYPE s histogram\n"
      "s_bucket{le=\"+Inf\"} 100\ns_sum 500\ns_count 100\n"
      "# TYPE s_p50 gauge\ns_p50 1\n"
      "# TYPE s_p95 gauge\ns_p95 2\n"
      "# TYPE s_p99 gauge\ns_p99 3\n"
      "# TYPE s_p999 gauge\ns_p999 4\n"
      "# TYPE s_max gauge\ns_max 5\n"
      "# TYPE s_sketch_count counter\ns_sketch_count 10\n");
  EXPECT_FALSE(diverged.ok);
  EXPECT_NE(diverged.error.find("diverges"), std::string::npos)
      << diverged.error;
}

TEST(Sketch, JsonCheckerValidatesSketchSection) {
  // Handcrafted sketches section with inverted quantiles must be rejected.
  const char* bad =
      "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"sketches\":"
      "{\"dp.x\":{\"count\":4,\"min\":1,\"max\":9,"
      "\"p50\":5,\"p95\":3,\"p99\":6,\"p999\":7}}}";
  const obs::MetricsCheck check = obs::check_metrics_json(bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("monotone"), std::string::npos) << check.error;
}

// ------------------------------------------------------ scope profiler --

TEST(Profiler, ScopeStackFoldsIntoWeightedCollapsedStacks) {
  obs::ScopeProfiler& profiler = obs::ScopeProfiler::instance();
  profiler.stop_sampler();
  profiler.clear();
  profiler.set_enabled(true);

  void* stack = obs::profiler_push_scope("alpha");
  obs::profiler_push_scope("beta");
  profiler.sample_once();
  obs::profiler_pop_scope(stack);
  profiler.sample_once();
  obs::profiler_pop_scope(stack);
  profiler.set_enabled(false);

  const std::string collapsed = profiler.collapsed();
  EXPECT_NE(collapsed.find("alpha;beta 1\n"), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("alpha 1\n"), std::string::npos) << collapsed;
  EXPECT_GE(profiler.samples(), 2u);
  profiler.clear();
}

TEST(Profiler, SpansMirrorOntoTheScopeStackWhileEnabled) {
  obs::ScopeProfiler& profiler = obs::ScopeProfiler::instance();
  profiler.stop_sampler();
  profiler.clear();
  profiler.set_enabled(true);
  {
    DP_SPAN_CAT("dp.test.outer", "test");
    {
      DP_SPAN_CAT("dp.test.inner", "test");
      profiler.sample_once();
    }
  }
  profiler.set_enabled(false);
  const std::string collapsed = profiler.collapsed();
  EXPECT_NE(collapsed.find("dp.test.outer;dp.test.inner 1\n"),
            std::string::npos)
      << collapsed;
  profiler.clear();

  // Disabled: spans leave no trace on the scope stack.
  {
    DP_SPAN_CAT("dp.test.ghost", "test");
    profiler.sample_once();
  }
  EXPECT_EQ(profiler.collapsed().find("dp.test.ghost"), std::string::npos);
  profiler.clear();
}

TEST(Profiler, SamplerTicksAcrossConcurrentSpanThreads) {
  obs::ScopeProfiler& profiler = obs::ScopeProfiler::instance();
  profiler.clear();
  profiler.start_sampler(std::chrono::milliseconds(1));

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        DP_SPAN_CAT("dp.test.worker", "test");
        DP_SPAN_CAT("dp.test.leaf", "test");
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  profiler.stop_sampler();
  profiler.set_enabled(false);

  EXPECT_GT(profiler.samples(), 0u);
  EXPECT_NE(profiler.collapsed().find("dp.test.worker"), std::string::npos);
  profiler.clear();
}

TEST(Profiler, DeepNestingBeyondTheFrameCapStaysBalanced) {
  obs::ScopeProfiler& profiler = obs::ScopeProfiler::instance();
  profiler.stop_sampler();
  profiler.clear();
  profiler.set_enabled(true);
  // Push well past kProfileMaxDepth; overflow frames are counted but not
  // named, and the matching pops must land the stack back at exactly zero.
  void* stack = nullptr;
  for (int d = 0; d < static_cast<int>(obs::kProfileMaxDepth) + 8; ++d) {
    stack = obs::profiler_push_scope("deep");
  }
  profiler.sample_once();
  for (int d = 0; d < static_cast<int>(obs::kProfileMaxDepth) + 8; ++d) {
    obs::profiler_pop_scope(stack);
  }
  profiler.sample_once();  // depth back to zero: nothing new folds in
  profiler.set_enabled(false);
  const std::uint64_t after = profiler.samples();
  EXPECT_EQ(after, 1u) << profiler.collapsed();
  profiler.clear();
}

// One full SDN1 diagnosis under explicit engine options.
std::string diagnose_sdn1_fingerprint_with(const ReplayOptions& options) {
  sdn::Scenario s = sdn::sdn1();
  LogReplayProvider provider(s.program, s.topology, s.log, options);
  const BadRun run = provider.replay_bad({});
  const auto good_tree = locate_tree(*run.graph, s.good_event);
  const auto bad_tree = locate_tree(*run.graph, s.bad_event);
  if (!good_tree || !bad_tree) return "tree missing";
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good_tree, s.bad_event);
  return good_tree->to_text() + "\n---\n" + bad_tree->to_text() + "\n---\n" +
         result.to_string();
}

TEST(Profiler, DiagnosisIsByteIdenticalWithProfilerOnAcrossExecVariants) {
  obs::ScopeProfiler& profiler = obs::ScopeProfiler::instance();
  struct Variant {
    const char* name;
    bool plans;
    bool batch;
  };
  for (const Variant v : {Variant{"fullscan", false, false},
                          Variant{"row", true, false},
                          Variant{"batch", true, true}}) {
    ReplayOptions options;
    options.engine_config.use_join_plans = v.plans;
    options.engine_config.use_batch_exec = v.batch;

    profiler.stop_sampler();
    profiler.set_enabled(false);
    const std::string off = diagnose_sdn1_fingerprint_with(options);

    profiler.start_sampler(std::chrono::milliseconds(1));
    const std::string on = diagnose_sdn1_fingerprint_with(options);
    profiler.stop_sampler();
    profiler.set_enabled(false);

    EXPECT_EQ(off, on) << "--exec " << v.name;
    EXPECT_NE(off.find("DiffProv: success"), std::string::npos) << v.name;
  }
  profiler.clear();
}

}  // namespace
}  // namespace dp
