// Tests for the observability layer (src/obs): metrics semantics, span
// nesting under concurrency, dump well-formedness (parsed back with the
// checker CI uses), and the two cross-variant guarantees -- tracing on/off
// changes nothing observable, and both join evaluators report identical
// semantic counters through the registry facade.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "diffprov/diffprov.h"
#include "ndlog/parser.h"
#include "obs/json_check.h"
#include "obs/obs.h"
#include "provenance/vertex.h"
#include "replay/replay_engine.h"
#include "runtime/metrics_observer.h"
#include "sdn/scenario.h"

namespace dp {
namespace {

// ----------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("dp.test.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(&registry.counter("dp.test.count"), &c);

  obs::Gauge& g = registry.gauge("dp.test.depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
  g.set_max(3);  // below current: no change
  EXPECT_EQ(g.value(), 5);
  g.set_max(9);
  EXPECT_EQ(g.value(), 9);

  EXPECT_EQ(registry.size(), 2u);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(registry.size(), 2u);  // instruments survive a reset
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // le semantics: lands in the 1.0 bucket
  h.observe(1.5);    // <= 10
  h.observe(10.0);   // in the 10.0 bucket
  h.observe(100.0);  // in the 100.0 bucket
  h.observe(100.5);  // overflow -> +Inf
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 100.5);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  for (std::uint64_t b : h.bucket_counts()) EXPECT_EQ(b, 0u);
}

TEST(Metrics, PrometheusDumpHasHistogramSeries) {
  obs::MetricsRegistry registry;
  registry.counter("dp.test.total").inc(3);
  registry.histogram("dp.test.lat_us", {1.0, 10.0}).observe(5.0);
  const std::string text = registry.to_prometheus();
  // Dots become underscores; histograms expose cumulative le buckets.
  EXPECT_NE(text.find("dp_test_total 3"), std::string::npos);
  EXPECT_NE(text.find("dp_test_lat_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dp_test_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dp_test_lat_us_count 1"), std::string::npos);
}

TEST(Metrics, JsonDumpParsesBack) {
  obs::MetricsRegistry registry;
  registry.counter("dp.test.a").inc();
  registry.gauge("dp.test.b").set(-4);
  registry.histogram("dp.test.c", {2.0}).observe(1.0);
  const std::string json = registry.to_json();
  EXPECT_EQ(obs::json_error(json), std::nullopt) << json;
  const obs::MetricsCheck check = obs::check_metrics_json(json);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.series, 3u);
  EXPECT_TRUE(check.names.count("dp.test.a"));
  EXPECT_TRUE(check.names.count("dp.test.b"));
  EXPECT_TRUE(check.names.count("dp.test.c"));
}

TEST(Metrics, SanitizeMetricSegment) {
  EXPECT_EQ(obs::sanitize_metric_segment("rule-1 (v2)"), "rule_1__v2_");
  EXPECT_EQ(obs::sanitize_metric_segment("ok_name.x"), "ok_name.x");
}

// ------------------------------------------------------------- spans --

TEST(Trace, SpanRecordsCompleteEvent) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span span(tracer, "dp.test.work", "test");
  }
  ASSERT_EQ(tracer.size(), 1u);
  const obs::TraceEvent event = tracer.events().front();
  EXPECT_EQ(event.name, "dp.test.work");
  EXPECT_STREQ(event.category, "test");
}

TEST(Trace, DisabledTracerRecordsNothingAndEndIsIdempotent) {
  obs::Tracer tracer;  // disabled by default
  obs::Span inert(tracer, "dp.test.skipped");
  EXPECT_FALSE(inert.active());
  inert.end();
  EXPECT_EQ(tracer.size(), 0u);

  tracer.set_enabled(true);
  obs::Span span(tracer, "dp.test.once");
  span.end();
  span.end();  // second end must not double-record
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Trace, ConcurrentSpansNestByTimeContainmentPerThread) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIterations = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kIterations; ++i) {
        obs::Span outer(tracer, "outer");
        obs::Span inner(tracer, "inner");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), std::size_t{kThreads} * kIterations * 2);
  std::set<std::uint32_t> tids;
  std::size_t inner_count = 0;
  for (const obs::TraceEvent& event : events) {
    tids.insert(event.tid);
    if (event.name != "inner") continue;
    ++inner_count;
    // Stack discipline: some same-thread outer span must contain it.
    bool contained = false;
    for (const obs::TraceEvent& outer : events) {
      if (outer.tid != event.tid || outer.name != "outer") continue;
      if (outer.start_us <= event.start_us &&
          outer.start_us + outer.duration_us >=
              event.start_us + event.duration_us) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "inner span escaped every outer span";
  }
  EXPECT_EQ(tids.size(), std::size_t{kThreads});
  EXPECT_EQ(inner_count, std::size_t{kThreads} * kIterations);
}

TEST(Trace, ChromeJsonParsesBackWithEscapedNames) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span a(tracer, "plain");
    obs::Span b(tracer, "we\"ird\\name");
    obs::Span c(tracer, "ctrl\nchar");  // control chars may be replaced,
                                        // but must never break the JSON
  }
  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(obs::json_error(json), std::nullopt) << json;
  const obs::TraceCheck check = obs::check_chrome_trace(json);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 3u);
  EXPECT_TRUE(check.names.count("plain"));
  EXPECT_TRUE(check.names.count("we\"ird\\name"));
}

TEST(Trace, JsonCheckerRejectsMalformedInput) {
  EXPECT_TRUE(obs::json_error("{\"truncated\": ").has_value());
  EXPECT_TRUE(obs::json_error("{\"trailing\": 1,}").has_value());
  EXPECT_FALSE(obs::check_chrome_trace("{\"noTraceEvents\": []}").ok);
  EXPECT_FALSE(obs::check_metrics_json("[1, 2]").ok);
}

// ----------------------------------------------- cross-variant tests --

// One full SDN1 diagnosis; returns every observable artifact as one string.
std::string diagnose_sdn1_fingerprint() {
  sdn::Scenario s = sdn::sdn1();
  LogReplayProvider provider(s.program, s.topology, s.log);
  const BadRun run = provider.replay_bad({});
  const auto good_tree = locate_tree(*run.graph, s.good_event);
  const auto bad_tree = locate_tree(*run.graph, s.bad_event);
  if (!good_tree || !bad_tree) return "tree missing";
  DiffProv diffprov(s.program, provider);
  const DiffProvResult result = diffprov.diagnose(*good_tree, s.bad_event);
  return good_tree->to_text() + "\n---\n" + bad_tree->to_text() + "\n---\n" +
         result.to_string();
}

TEST(Obs, TracingOnOffIsByteIdenticalForProvenanceAndDiagnosis) {
  obs::default_tracer().set_enabled(false);
  const std::string off = diagnose_sdn1_fingerprint();

  obs::default_tracer().set_enabled(true);
  const std::string on = diagnose_sdn1_fingerprint();
  obs::default_tracer().set_enabled(false);
  obs::default_tracer().clear();

  EXPECT_EQ(off, on);
  EXPECT_NE(off.find("DiffProv: success"), std::string::npos) << off;
}

TEST(Obs, PlannedAndFullScanEvaluatorsAgreeThroughRegistryFacade) {
  sdn::Scenario s = sdn::sdn1();
  ReplayOptions planned;
  planned.engine_config.use_join_plans = true;
  ReplayOptions fullscan;
  fullscan.engine_config.use_join_plans = false;
  ReplayResult a = replay(s.program, s.topology, s.log, {}, planned);
  ReplayResult b = replay(s.program, s.topology, s.log, {}, fullscan);

  obs::MetricsRegistry& ra = a.engine->metrics();
  obs::MetricsRegistry& rb = b.engine->metrics();
  // Semantic counters must agree exactly (join-mechanics counters --
  // index_probes, tuples_scanned -- differ by design).
  std::vector<std::string> names = {
      "dp.runtime.base_inserts",     "dp.runtime.base_deletes",
      "dp.runtime.derivations",      "dp.runtime.underivations",
      "dp.runtime.remote_messages",  "dp.runtime.events_processed",
  };
  for (const Rule& rule : s.program.rules()) {
    names.push_back("dp.runtime.rule_firings." +
                    obs::sanitize_metric_segment(rule.name));
  }
  for (const std::string& name : names) {
    EXPECT_EQ(ra.counter(name).value(), rb.counter(name).value()) << name;
  }
  EXPECT_GT(ra.counter("dp.runtime.derivations").value(), 0u);

  // The Stats struct is a facade over the same numbers.
  EXPECT_EQ(a.engine->stats().derivations,
            ra.counter("dp.runtime.derivations").value());
  EXPECT_EQ(a.engine->stats().events_processed,
            ra.counter("dp.runtime.events_processed").value());
}

TEST(Obs, ProvenanceVertexCountsPublishPerKind) {
  // replay() publishes graph growth into the default registry (the registry
  // is shared process-wide, so we measure deltas around the call).
  obs::MetricsRegistry& registry = obs::default_registry();
  const std::uint64_t vertices_before =
      registry.counter("dp.prov.vertices").value();
  const std::uint64_t derives_before =
      registry.counter("dp.prov.vertex.derive").value();

  sdn::Scenario s = sdn::sdn1();
  ReplayResult run = replay(s.program, s.topology, s.log, {}, {});
  ProvenanceGraph& graph = run.recorder->graph();

  const auto& by_kind = graph.counters().by_kind;
  std::uint64_t total = 0;
  for (std::uint64_t n : by_kind) total += n;
  EXPECT_EQ(total, graph.size());
  EXPECT_GT(by_kind[static_cast<std::size_t>(VertexKind::kDerive)], 0u);

  EXPECT_EQ(registry.counter("dp.prov.vertices").value() - vertices_before,
            total);
  EXPECT_EQ(registry.counter("dp.prov.vertex.derive").value() - derives_before,
            by_kind[static_cast<std::size_t>(VertexKind::kDerive)]);
  // Delta-publish: republishing an unchanged graph adds nothing.
  graph.publish_metrics(registry);
  EXPECT_EQ(registry.counter("dp.prov.vertices").value() - vertices_before,
            total);
}

TEST(Obs, MetricsObserverCountsPerTableActivity) {
  Program program = parse_program(R"(
    table base(2) base mutable keys(0).
    table out(2) derived.
    rule r out(@N, V) :- base(@N, V).
  )");
  Engine engine(program, {});
  obs::MetricsRegistry registry;
  MetricsObserver observer(registry);
  engine.add_observer(&observer);

  engine.schedule_insert(Tuple("base", {"n1", 1}), 0);
  engine.run();
  EXPECT_EQ(registry.counter("dp.runtime.table.base.inserts").value(), 1u);
  EXPECT_EQ(registry.counter("dp.runtime.table.out.derives").value(), 1u);

  // A key upsert displaces the old row: one delete, one underive.
  engine.schedule_insert(Tuple("base", {"n1", 2}), 1);
  engine.run();
  EXPECT_EQ(registry.counter("dp.runtime.table.base.inserts").value(), 2u);
  EXPECT_EQ(registry.counter("dp.runtime.table.base.deletes").value(), 1u);
  EXPECT_EQ(registry.counter("dp.runtime.table.out.underives").value(), 1u);
}

TEST(Obs, EngineRecordsRuleSpansWhenTracingIsEnabled) {
  obs::default_tracer().clear();
  obs::default_tracer().set_enabled(true);
  sdn::Scenario s = sdn::sdn1();
  ReplayResult run = replay(s.program, s.topology, s.log, {}, {});
  obs::default_tracer().set_enabled(false);

  std::size_t rule_spans = 0;
  bool saw_run_span = false;
  for (const obs::TraceEvent& event : obs::default_tracer().events()) {
    if (event.name.rfind("rule:", 0) == 0) ++rule_spans;
    if (event.name == "dp.runtime.run") saw_run_span = true;
  }
  obs::default_tracer().clear();
  EXPECT_GT(rule_spans, 0u);
  EXPECT_TRUE(saw_run_span);
  // Latency samples ride along with the spans.
  EXPECT_GT(run.engine->metrics().histogram("dp.runtime.rule_fire_us").count(),
            0u);
}

}  // namespace
}  // namespace dp
