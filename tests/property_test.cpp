// Property-based tests: parameterized sweeps over randomized (seeded,
// deterministic) inputs, checking invariants rather than examples.
//
// Each suite is instantiated over a range of RNG seeds; a failure message
// includes the seed, which reproduces the case deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "diffprov/diffprov.h"
#include "diffprov/formula.h"
#include "diffprov/seed.h"
#include "diffprov/treediff.h"
#include "ndlog/functions.h"
#include "ndlog/parser.h"
#include "ndlog/table.h"
#include "replay/event_log.h"
#include "util/rng.h"

namespace dp {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};

  Value random_value() {
    switch (rng.next_below(5)) {
      case 0: return Value(rng.next_in(-1000, 1000));
      case 1: return Value(double(rng.next_in(-100, 100)) / 4.0);
      case 2: return Value("s" + std::to_string(rng.next_below(50)));
      case 3:
        return Value(Ipv4(static_cast<std::uint32_t>(rng.next_u64())));
      default:
        return Value(IpPrefix(
            Ipv4(static_cast<std::uint32_t>(rng.next_u64())),
            static_cast<int>(rng.next_below(33))));
    }
  }

  Tuple random_tuple(std::size_t max_arity = 5) {
    std::vector<Value> values;
    values.emplace_back("n" + std::to_string(rng.next_below(4)));
    const std::size_t arity = 1 + rng.next_below(max_arity);
    for (std::size_t i = 1; i < arity; ++i) values.push_back(random_value());
    return Tuple("t" + std::to_string(rng.next_below(3)), std::move(values));
  }
};

// ----------------------------------------------------------- value order --

class ValueProperties : public Seeded {};

TEST_P(ValueProperties, OrderingIsATotalOrder) {
  for (int i = 0; i < 200; ++i) {
    const Value a = random_value();
    const Value b = random_value();
    const int relations = int(a < b) + int(b < a) + int(a == b);
    EXPECT_EQ(relations, 1) << a.to_string() << " vs " << b.to_string();
    EXPECT_FALSE(a < a);
    if (a == b) EXPECT_EQ(a.hash(), b.hash());
  }
}

TEST_P(ValueProperties, OrderingIsTransitive) {
  for (int i = 0; i < 100; ++i) {
    std::vector<Value> values = {random_value(), random_value(),
                                 random_value()};
    std::sort(values.begin(), values.end(),
              [](const Value& x, const Value& y) { return x < y; });
    EXPECT_FALSE(values[1] < values[0]);
    EXPECT_FALSE(values[2] < values[1]);
    EXPECT_FALSE(values[2] < values[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValueProperties, ::testing::Range<std::uint64_t>(1, 9));

// -------------------------------------------------------------- prefixes --

class PrefixProperties : public Seeded {};

TEST_P(PrefixProperties, BaseIsContainedAndNormalizationIsIdempotent) {
  for (int i = 0; i < 300; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(rng.next_u64()));
    const int length = static_cast<int>(rng.next_below(33));
    const IpPrefix p(addr, length);
    EXPECT_TRUE(p.contains(p.base()));
    EXPECT_TRUE(p.contains(addr));  // normalization keeps the address inside
    EXPECT_EQ(IpPrefix(p.base(), p.length()), p);
    EXPECT_TRUE(p.covers(p));
    // Parsing its rendering round-trips.
    EXPECT_EQ(*IpPrefix::parse(p.to_string()), p);
  }
}

TEST_P(PrefixProperties, CoversIsConsistentWithContains) {
  for (int i = 0; i < 300; ++i) {
    const IpPrefix a(Ipv4(static_cast<std::uint32_t>(rng.next_u64())),
                     static_cast<int>(rng.next_below(25)));
    const IpPrefix b(Ipv4(static_cast<std::uint32_t>(rng.next_u64())),
                     static_cast<int>(rng.next_below(33)));
    if (a.covers(b)) {
      // Any address in b is in a; spot-check with b's base and a random
      // host inside b.
      EXPECT_TRUE(a.contains(b.base()));
      const std::uint32_t host =
          b.length() >= 32
              ? 0
              : static_cast<std::uint32_t>(rng.next_below(
                    1ull << (32 - static_cast<unsigned>(b.length()))));
      EXPECT_TRUE(a.contains(Ipv4(b.base().value() | host)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefixProperties, ::testing::Range<std::uint64_t>(1, 9));

// ----------------------------------------------------------------- table --

class TableProperties : public Seeded {};

TEST_P(TableProperties, IntervalsAreOrderedDisjointAndKeyUnique) {
  TableDecl decl;
  decl.name = "t0";
  decl.arity = 3;
  decl.key_columns = {0, 1};
  Table table(decl);

  // Random insert/remove churn over a small tuple universe.
  std::vector<Tuple> universe;
  for (int i = 0; i < 12; ++i) {
    universe.push_back(Tuple(
        "t0", {Value("n" + std::to_string(i % 2)), Value(std::int64_t(i % 4)),
               Value(std::int64_t(i))}));
  }
  LogicalTime now = 0;
  for (int step = 0; step < 400; ++step) {
    now += 1 + LogicalTime(rng.next_below(5));
    const Tuple& t = universe[rng.next_below(universe.size())];
    if (rng.next_bool(0.6)) {
      table.insert(t, now);
    } else {
      table.remove(t, now);
    }
  }

  // Invariant 1: per-tuple interval histories are ordered and disjoint.
  for (const Tuple& t : universe) {
    const auto history = table.history(t);
    for (std::size_t i = 0; i < history.size(); ++i) {
      EXPECT_LE(history[i].start,
                history[i].open_ended() ? kTimeInfinity : history[i].end);
      if (i > 0) {
        EXPECT_FALSE(history[i - 1].open_ended());
        EXPECT_LE(history[i - 1].end, history[i].start);
      }
    }
  }
  // Invariant 2: at most one live tuple per key, and live tuples are
  // exactly those whose last interval is open.
  std::map<std::vector<Value>, int> live_per_key;
  table.for_each_live([&](const Tuple& t) {
    ++live_per_key[table.key_of(t)];
    const auto history = table.history(t);
    ASSERT_FALSE(history.empty());
    EXPECT_TRUE(history.back().open_ended());
  });
  for (const auto& [key, count] : live_per_key) {
    EXPECT_EQ(count, 1);
  }
  // Invariant 3: existed_at agrees with the recorded history.
  for (const Tuple& t : universe) {
    for (const TimeInterval& iv : table.history(t)) {
      EXPECT_TRUE(table.existed_at(t, iv.start));
      if (!iv.open_ended()) EXPECT_FALSE(table.existed_at(t, iv.end));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TableProperties, ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------- event log --

class EventLogProperties : public Seeded {};

TEST_P(EventLogProperties, BinaryAndTextRoundTripsPreserveEverything) {
  EventLog log;
  LogicalTime now = 0;
  for (int i = 0; i < 60; ++i) {
    now += LogicalTime(rng.next_below(100));
    Tuple t = random_tuple();
    if (rng.next_bool(0.8)) {
      log.append_insert(std::move(t), now);
    } else {
      log.append_delete(std::move(t), now);
    }
  }
  // Binary round-trip: identical records and identical byte size.
  std::ostringstream out;
  log.serialize(out);
  EXPECT_EQ(out.str().size(), log.byte_size());
  std::istringstream in(out.str());
  const EventLog binary = EventLog::deserialize(in);
  ASSERT_EQ(binary.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(binary.records()[i], log.records()[i]);
  }
  // Text round-trip.
  const EventLog text = EventLog::from_text(log.to_text());
  ASSERT_EQ(text.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(text.records()[i], log.records()[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EventLogProperties, ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------ inversion --

class InversionProperties : public Seeded {};

TEST_P(InversionProperties, AffineChainsInvertExactly) {
  // Build a random invertible chain around X: ((X op c1) op c2) ... with
  // ops from {+, -, *, ^} (multiplication uses the inverse direction
  // "X * c" so integer division divides exactly after inversion).
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t x = rng.next_in(-50, 50);
    ExprPtr expr = Expr::make_var("X");
    Bindings env_check{{"X", Value(x)}};
    const int depth = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < depth; ++i) {
      const std::int64_t c = rng.next_in(1, 9);
      switch (rng.next_below(4)) {
        case 0:
          expr = Expr::make_binary(BinOp::kAdd, expr,
                                   Expr::make_const(Value(c)));
          break;
        case 1:
          expr = Expr::make_binary(BinOp::kSub, expr,
                                   Expr::make_const(Value(c)));
          break;
        case 2:
          expr = Expr::make_binary(BinOp::kMul, expr,
                                   Expr::make_const(Value(c)));
          break;
        default:
          expr = Expr::make_binary(BinOp::kBitXor, expr,
                                   Expr::make_const(Value(c)));
          break;
      }
    }
    const Value target = eval_expr(*expr, env_check);
    const auto inverted = invert_expr_for_var(
        *expr, "X", Formula::make_const(target), {});
    ASSERT_TRUE(inverted.has_value()) << expr->to_string();
    EXPECT_EQ((*inverted)->eval({}).as_int(), x)
        << expr->to_string() << " target " << target.to_string();
  }
}

TEST_P(InversionProperties, PrefixSolverWidensMinimally) {
  for (int trial = 0; trial < 100; ++trial) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next_u64()));
    const IpPrefix current(
        Ipv4(static_cast<std::uint32_t>(rng.next_u64())),
        8 + static_cast<int>(rng.next_below(25)));
    const BuiltinInfo* info = FunctionRegistry::instance().find("f_matches");
    const auto solved =
        info->solver(1, {Value(ip), Value(current)}, Value(1));
    ASSERT_TRUE(solved.has_value());
    const IpPrefix widened = solved->as_prefix();
    // Soundness: the result covers the address...
    EXPECT_TRUE(widened.contains(ip));
    // ... derives from the current base ...
    EXPECT_TRUE(widened.covers(IpPrefix(current.base(), current.length())));
    // ... and is minimal: one bit narrower no longer contains the address
    // (unless it already matched at the original length).
    if (widened.length() < current.length()) {
      const IpPrefix narrower(current.base(), widened.length() + 1);
      EXPECT_FALSE(narrower.contains(ip));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InversionProperties, ::testing::Range<std::uint64_t>(1, 9));

// ----------------------------------------------- engine + provenance ----

constexpr const char* kPropertyNetwork = R"(
  table packet(3) base immutable event.
  table flowEntry(4) keys(0, 2) base mutable.
  table packetAt(3) derived event.
  table fwd(4) derived event.
  table delivered(3) derived.
  rule r0 packetAt(@Sw, Pkt, Dst) :- packet(@Sw, Pkt, Dst).
  rule r1 argmax Prio
    fwd(@Sw, Pkt, Dst, Next) :-
      packetAt(@Sw, Pkt, Dst), flowEntry(@Sw, Prio, Prefix, Next),
      f_matches(Dst, Prefix) == 1.
  rule r2 packetAt(@Next, Pkt, Dst) :- fwd(@Sw, Pkt, Dst, Next),
      f_strlen(Next) > 2.
  rule r3 delivered(@Next, Pkt, Dst) :- fwd(@Sw, Pkt, Dst, Next),
      f_strlen(Next) <= 2.
)";

class EngineProperties : public Seeded {
 protected:
  /// Builds a random loop-free forwarding chain plus noise entries, and a
  /// packet workload; returns the log.
  EventLog random_network(int* delivered_hint) {
    EventLog log;
    // A chain sws0 -> sws1 -> ... -> host, plus random more-specific routes
    // that shortcut to a host.
    const int chain = 2 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < chain; ++i) {
      const std::string self = "sws" + std::to_string(i);
      const std::string next =
          i + 1 == chain ? "h1" : "sws" + std::to_string(i + 1);
      log.append_insert(
          Tuple("flowEntry", {Value(self), Value(1),
                              Value(*IpPrefix::parse("0.0.0.0/0")),
                              Value(next)}),
          0);
      if (rng.next_bool(0.5)) {
        log.append_insert(
            Tuple("flowEntry",
                  {Value(self), Value(10 + i),
                   Value(IpPrefix(
                       Ipv4(10, std::uint8_t(rng.next_below(4)), 0, 0), 16)),
                   Value("h2")}),
            0);
      }
    }
    const int packets = 20 + static_cast<int>(rng.next_below(30));
    *delivered_hint = packets;
    for (int i = 0; i < packets; ++i) {
      log.append_insert(
          Tuple("packet",
                {Value("sws0"), Value(std::int64_t(i)),
                 Value(Ipv4(10, std::uint8_t(rng.next_below(8)),
                            std::uint8_t(rng.next_below(256)), 1))}),
          100 + 10 * i);
    }
    return log;
  }
};

TEST_P(EngineProperties, ReplayIsBitwiseDeterministic) {
  int packets = 0;
  const EventLog log = random_network(&packets);
  const Program program = parse_program(kPropertyNetwork);
  LogReplayProvider provider(program, Topology{}, log);
  const BadRun a = provider.replay_bad({});
  const BadRun b = provider.replay_bad({});
  EXPECT_EQ(a.graph->size(), b.graph->size());
  // Every tuple in a's graph appears with the same intervals in b's.
  a.graph->for_each_tuple([&](const Tuple& t, const auto& exists) {
    EXPECT_EQ(b.graph->exists_of(t).size(), exists.size())
        << t.to_string();
  });
}

TEST_P(EngineProperties, EveryPacketIsDeliveredExactlyOnce) {
  // The chain is loop-free and ends at a host, and shortcut entries also
  // end at a host, so every packet must be delivered exactly once.
  int packets = 0;
  const EventLog log = random_network(&packets);
  const Program program = parse_program(kPropertyNetwork);
  LogReplayProvider provider(program, Topology{}, log);
  const BadRun run = provider.replay_bad({});
  int delivered = 0;
  run.graph->for_each_tuple([&](const Tuple& t, const auto&) {
    if (t.table() == "delivered") ++delivered;
  });
  EXPECT_EQ(delivered, packets);
}

TEST_P(EngineProperties, ProvenanceTreesAreWellFormed) {
  int packets = 0;
  const EventLog log = random_network(&packets);
  const Program program = parse_program(kPropertyNetwork);
  LogReplayProvider provider(program, Topology{}, log);
  const BadRun run = provider.replay_bad({});
  int checked = 0;
  run.graph->for_each_tuple([&](const Tuple& t, const auto& exists) {
    if (t.table() != "delivered" || checked >= 5) return;
    ++checked;
    const ProvTree tree = ProvTree::project(*run.graph, exists.back());
    // Structure: the root is an EXIST of the queried tuple; the seed is an
    // INSERT of a packet; the spine is non-empty; every DERIVE's rule is in
    // the program.
    EXPECT_EQ(tree.vertex_of(tree.root()).kind, VertexKind::kExist);
    EXPECT_EQ(tree.vertex_of(tree.root()).tuple(), t);
    const auto seed = find_seed(tree);
    ASSERT_TRUE(seed.has_value());
    EXPECT_EQ(seed->tuple.table(), "packet");
    EXPECT_FALSE(spine_of(tree, *seed).empty());
    tree.visit([&](ProvTree::NodeIndex i) {
      const Vertex& v = tree.vertex_of(i);
      if (v.kind == VertexKind::kDerive) {
        EXPECT_NE(program.find_rule(v.rule()), nullptr) << v.rule();
        // A derivation happens while (or right after) its children exist.
        for (const auto child : tree.node(i).children) {
          EXPECT_LE(tree.vertex_of(child).interval.start, v.time);
        }
      }
    });
  });
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineProperties, ::testing::Range<std::uint64_t>(1, 13));

// --------------------------------------------------- diffprov end-to-end --

class DiffProvProperties : public Seeded {};

// Randomized SDN1-shaped faults: a route intended for a /L source block is
// written /L+1, so the sibling half falls through to a default route.
// DiffProv must always return exactly one change that widens the prefix
// back, regardless of where the subnet sits.
TEST_P(DiffProvProperties, AlwaysPinpointsTheNarrowedPrefix) {
  const Program program = parse_program(kPropertyNetwork);
  for (int trial = 0; trial < 4; ++trial) {
    const int intended_len = 12 + static_cast<int>(rng.next_below(16));
    const IpPrefix intended(
        Ipv4(static_cast<std::uint32_t>(rng.next_u64())), intended_len);
    const IpPrefix buggy(intended.base(), intended_len + 1);
    // An address inside the intended block but outside the buggy one:
    // flip the bit right below the intended length.
    const std::uint32_t flip = 1u << (31 - intended_len);
    const Ipv4 bad_src(buggy.base().value() | flip);
    const Ipv4 good_src(buggy.base().value() | 1u);

    EventLog log;
    auto entry = [&](const std::string& sw, int prio, const IpPrefix& p,
                     const std::string& next) {
      log.append_insert(Tuple("flowEntry", {Value(sw), Value(prio), Value(p),
                                            Value(next)}),
                        0);
    };
    entry("sws0", 100, buggy, "sws1");
    entry("sws0", 1, *IpPrefix::parse("0.0.0.0/0"), "h2");
    entry("sws1", 1, *IpPrefix::parse("0.0.0.0/0"), "h1");
    log.append_insert(
        Tuple("packet", {Value("sws0"), Value(1), Value(good_src)}), 100);
    log.append_insert(
        Tuple("packet", {Value("sws0"), Value(2), Value(bad_src)}), 200);

    LogReplayProvider query(program, Topology{}, log);
    const BadRun run = query.replay_bad({});
    const auto good = locate_tree(
        *run.graph, Tuple("delivered", {Value("h1"), Value(1),
                                        Value(good_src)}));
    ASSERT_TRUE(good.has_value()) << intended.to_string();
    LogReplayProvider provider(program, Topology{}, log);
    DiffProv diffprov(program, provider);
    const DiffProvResult result = diffprov.diagnose(
        *good, Tuple("delivered", {Value("h2"), Value(2), Value(bad_src)}));
    ASSERT_TRUE(result.ok())
        << intended.to_string() << ": " << result.to_string();
    ASSERT_EQ(result.changes.size(), 1u) << result.to_string();
    ASSERT_TRUE(result.changes[0].after.has_value());
    const IpPrefix fixed = result.changes[0].after->at(2).as_prefix();
    EXPECT_TRUE(fixed.contains(bad_src)) << fixed.to_string();
    EXPECT_TRUE(fixed.contains(good_src)) << fixed.to_string();
    EXPECT_EQ(fixed.length(), intended_len) << "not minimal";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiffProvProperties, ::testing::Range<std::uint64_t>(1, 9));

// ------------------------------------------------------------ tree diff --

class TreeDiffProperties : public Seeded {};

TEST_P(TreeDiffProperties, DiffAndEditDistanceInvariants) {
  const Program program = parse_program(kPropertyNetwork);
  // Build two related trees from one random run.
  EventLog log;
  log.append_insert(Tuple("flowEntry", {Value("sws0"), Value(1),
                                        Value(*IpPrefix::parse("0.0.0.0/0")),
                                        Value("h1")}),
                    0);
  const int n = 3 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < n; ++i) {
    log.append_insert(
        Tuple("packet", {Value("sws0"), Value(std::int64_t(i)),
                         Value(Ipv4(10, 0, 0, std::uint8_t(i + 1)))}),
        100 + 10 * i);
  }
  LogReplayProvider provider(program, Topology{}, log);
  const BadRun run = provider.replay_bad({});
  std::vector<ProvTree> trees;
  run.graph->for_each_tuple([&](const Tuple& t, const auto& exists) {
    if (t.table() == "delivered") {
      trees.push_back(ProvTree::project(*run.graph, exists.back()));
    }
  });
  ASSERT_GE(trees.size(), 2u);
  for (std::size_t i = 0; i + 1 < trees.size(); ++i) {
    const ProvTree& a = trees[i];
    const ProvTree& b = trees[i + 1];
    // Identity.
    EXPECT_EQ(plain_tree_diff(a, a).diff_size(), 0u);
    EXPECT_EQ(tree_edit_distance(a, a), 0u);
    // Symmetry of the diff counts.
    const TreeDiffStats ab = plain_tree_diff(a, b);
    const TreeDiffStats ba = plain_tree_diff(b, a);
    EXPECT_EQ(ab.only_in_good, ba.only_in_bad);
    EXPECT_EQ(ab.only_in_bad, ba.only_in_good);
    EXPECT_EQ(ab.common, ba.common);
    // Bounds: the edit distance is at most delete-all + insert-all, and at
    // least the size difference.
    const std::size_t distance = tree_edit_distance(a, b);
    EXPECT_LE(distance, a.size() + b.size());
    EXPECT_GE(distance + std::min(a.size(), b.size()),
              std::max(a.size(), b.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeDiffProperties, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dp
