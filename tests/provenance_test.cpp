// Tests for the temporal provenance graph, recorder and tree projection.
#include <gtest/gtest.h>

#include "ndlog/parser.h"
#include "provenance/recorder.h"
#include "provenance/tree.h"
#include "runtime/engine.h"

namespace dp {
namespace {

Tuple make(const std::string& table, std::vector<Value> values) {
  return Tuple(table, std::move(values));
}

TEST(Graph, BaseInsertCreatesInsertAppearExistChain) {
  ProvenanceGraph graph;
  const Tuple t = make("cfg", {"n", 1});
  const VertexId exist = graph.record_base_insert(t, 10, false);
  const Vertex& ev = graph.vertex(exist);
  EXPECT_EQ(ev.kind, VertexKind::kExist);
  EXPECT_TRUE(ev.interval.open_ended());
  ASSERT_EQ(ev.children.size(), 1u);
  const Vertex& av = graph.vertex(ev.children[0]);
  EXPECT_EQ(av.kind, VertexKind::kAppear);
  ASSERT_EQ(av.children.size(), 1u);
  EXPECT_EQ(graph.vertex(av.children[0]).kind, VertexKind::kInsert);
}

TEST(Graph, EventTuplesGetInstantInterval) {
  ProvenanceGraph graph;
  const Tuple t = make("packet", {"n", 1});
  const VertexId exist = graph.record_base_insert(t, 10, true);
  EXPECT_EQ(graph.vertex(exist).interval, (TimeInterval{10, 11}));
  EXPECT_TRUE(graph.exist_at(t, 10).has_value());
  EXPECT_FALSE(graph.exist_at(t, 11).has_value());
  EXPECT_TRUE(graph.latest_exist_before(t, 50).has_value());
}

TEST(Graph, DeriveLinksBodyExists) {
  ProvenanceGraph graph;
  const Tuple b1 = make("a", {"n", 1});
  const Tuple b2 = make("b", {"n", 1, 2});
  const Tuple head = make("c", {"n", 3});
  graph.record_base_insert(b1, 1, false);
  graph.record_base_insert(b2, 2, false);
  const VertexId exist = graph.record_derive(head, "r1", {b1, b2}, 1, 3,
                                             false);
  const Vertex& ev = graph.vertex(exist);
  const Vertex& appear = graph.vertex(ev.children[0]);
  const Vertex& derive = graph.vertex(appear.children[0]);
  EXPECT_EQ(derive.kind, VertexKind::kDerive);
  EXPECT_EQ(derive.rule(), "r1");
  ASSERT_EQ(derive.children.size(), 2u);
  EXPECT_EQ(graph.vertex(derive.children[0]).tuple(), b1);
  EXPECT_EQ(graph.vertex(derive.children[1]).tuple(), b2);
  EXPECT_EQ(derive.trigger_index, 1);
}

TEST(Graph, RederivationAttachesToExistingAppear) {
  ProvenanceGraph graph;
  const Tuple b1 = make("a", {"n", 1});
  const Tuple b2 = make("a", {"n", 2});
  const Tuple head = make("c", {"n", 3});
  graph.record_base_insert(b1, 1, false);
  graph.record_base_insert(b2, 2, false);
  const VertexId e1 = graph.record_derive(head, "r1", {b1}, 0, 3, false);
  const VertexId e2 = graph.record_derive(head, "r2", {b2}, 0, 4, false);
  EXPECT_EQ(e1, e2);  // same live EXIST
  const Vertex& appear = graph.vertex(graph.vertex(e1).children[0]);
  EXPECT_EQ(appear.children.size(), 2u);  // two alternative derivations
}

TEST(Graph, DeleteClosesIntervalAndAddsNegativeVertices) {
  ProvenanceGraph graph;
  const Tuple t = make("cfg", {"n", 1});
  const VertexId exist = graph.record_base_insert(t, 10, false);
  graph.record_base_delete(t, 20);
  EXPECT_EQ(graph.vertex(exist).interval, (TimeInterval{10, 20}));
  EXPECT_FALSE(graph.exist_at(t, 25).has_value());
  EXPECT_TRUE(graph.exist_at(t, 15).has_value());
}

TEST(Graph, TriggerIndexFindsDownstreamDerivations) {
  ProvenanceGraph graph;
  const Tuple seed = make("pkt", {"n", 1});
  const Tuple head = make("out", {"n", 1});
  const VertexId seed_exist = graph.record_base_insert(seed, 1, true);
  graph.record_derive(head, "r1", {seed}, 0, 2, true);
  const auto derivations = graph.derivations_triggered_by(seed_exist);
  ASSERT_EQ(derivations.size(), 1u);
  EXPECT_EQ(graph.vertex(derivations[0]).tuple(), head);
}

// ---------------------------------------------------------------- trees --

constexpr const char* kChainProgram = R"(
  table base1(2) base mutable.
  table base2(2) base mutable.
  table mid(2) derived.
  table top(2) derived.
  rule r1 mid(@N, X) :- base1(@N, X), base2(@N, X).
  rule r2 top(@N, X) :- mid(@N, X).
)";

TEST(Tree, ProjectionExpandsFullCausalChain) {
  ProvenanceRecorder recorder;
  Engine engine((parse_program(kChainProgram)));
  engine.add_observer(&recorder);
  engine.schedule_insert(make("base1", {"n", 1}), 0);
  engine.schedule_insert(make("base2", {"n", 1}), 5);
  engine.run();

  const Tuple top = make("top", {"n", 1});
  const auto exist = recorder.graph().exist_at(top, engine.now());
  ASSERT_TRUE(exist.has_value());
  const ProvTree tree = ProvTree::project(recorder.graph(), *exist);

  // EXIST(top) -> APPEAR -> DERIVE(r2) -> EXIST(mid) -> APPEAR -> DERIVE(r1)
  //   -> { EXIST(base1) -> APPEAR -> INSERT, EXIST(base2) -> APPEAR ->
  //   INSERT } : 12 vertexes total.
  EXPECT_EQ(tree.size(), 12u);
  const auto hist = tree.kind_histogram();
  EXPECT_EQ(hist.at(VertexKind::kExist), 4u);
  EXPECT_EQ(hist.at(VertexKind::kAppear), 4u);
  EXPECT_EQ(hist.at(VertexKind::kDerive), 2u);
  EXPECT_EQ(hist.at(VertexKind::kInsert), 2u);
  EXPECT_EQ(tree.depth(), 9u);
  EXPECT_EQ(tree.vertex_of(tree.root()).tuple(), top);
}

TEST(Tree, TextAndDotRenderings) {
  ProvenanceRecorder recorder;
  Engine engine((parse_program(kChainProgram)));
  engine.add_observer(&recorder);
  engine.schedule_insert(make("base1", {"n", 1}), 0);
  engine.schedule_insert(make("base2", {"n", 1}), 5);
  engine.run();
  const auto exist =
      recorder.graph().exist_at(make("top", {"n", 1}), engine.now());
  const ProvTree tree = ProvTree::project(recorder.graph(), *exist);
  const std::string text = tree.to_text();
  EXPECT_NE(text.find("DERIVE top(@n, 1) via r2"), std::string::npos);
  EXPECT_NE(text.find("INSERT base1(@n, 1)"), std::string::npos);
  const std::string dot = tree.to_dot();
  EXPECT_NE(text.find("EXIST"), std::string::npos);
  EXPECT_NE(dot.find("digraph provenance"), std::string::npos);
  // Truncated rendering.
  const std::string truncated = tree.to_text(3);
  EXPECT_NE(truncated.find("more vertexes"), std::string::npos);
}

TEST(Recorder, FilterPrunesButKeepsBoundary) {
  ProvenanceRecorder recorder;
  // Record only tuples on node "n" whose table is not base2; base2 will show
  // up as a boundary fact when referenced by a derivation.
  recorder.set_filter(
      [](const Tuple& t) { return t.table() != "base2"; });
  Engine engine((parse_program(kChainProgram)));
  engine.add_observer(&recorder);
  engine.schedule_insert(make("base1", {"n", 1}), 0);
  engine.schedule_insert(make("base2", {"n", 1}), 5);
  engine.run();
  const auto exist =
      recorder.graph().exist_at(make("top", {"n", 1}), engine.now());
  ASSERT_TRUE(exist.has_value());
  const ProvTree tree = ProvTree::project(recorder.graph(), *exist);
  // The boundary EXIST for base2 is still present (as an unexpanded fact).
  const std::string text = tree.to_text();
  EXPECT_NE(text.find("base2"), std::string::npos);
}

TEST(Recorder, DisabledRecorderStaysEmpty) {
  ProvenanceRecorder recorder;
  recorder.set_enabled(false);
  Engine engine((parse_program(kChainProgram)));
  engine.add_observer(&recorder);
  engine.schedule_insert(make("base1", {"n", 1}), 0);
  engine.run();
  EXPECT_EQ(recorder.graph().size(), 0u);
}

TEST(Recorder, RuntimeIntegrationRecordsUnderive) {
  ProvenanceRecorder recorder;
  Engine engine((parse_program(kChainProgram)));
  engine.add_observer(&recorder);
  engine.schedule_insert(make("base1", {"n", 1}), 0);
  engine.schedule_insert(make("base2", {"n", 1}), 5);
  engine.schedule_delete(make("base1", {"n", 1}), 100);
  engine.run();
  // top and mid must both have closed EXIST intervals now.
  EXPECT_FALSE(
      recorder.graph().exist_at(make("top", {"n", 1}), 200).has_value());
  EXPECT_TRUE(
      recorder.graph().exist_at(make("top", {"n", 1}), 50).has_value());
}

}  // namespace
}  // namespace dp
