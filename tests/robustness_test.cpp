// Robustness and semantics-edge tests: recursive programs, forwarding-loop
// guards, strict evaluation, ECMP-style deterministic load balancing, and
// the no-progress (race-condition analog) failure mode of section 4.9.
#include <gtest/gtest.h>

#include "diffprov/diffprov.h"
#include "ndlog/parser.h"
#include "runtime/engine.h"

namespace dp {
namespace {

// ------------------------------------------------------------ recursion --

TEST(Recursion, TransitiveClosureConverges) {
  // Classic datalog reachability over materialized state: recursion through
  // the derived table itself.
  Engine engine(parse_program(R"(
    table edge(3) base mutable.       // edge(@Ctl, From, To)
    table reach(3) derived.           // reach(@Ctl, From, To)
    rule t1 reach(@C, X, Y) :- edge(@C, X, Y).
    rule t2 reach(@C, X, Z) :- reach(@C, X, Y), edge(@C, Y, Z).
  )"));
  const std::vector<std::pair<const char*, const char*>> edges = {
      {"a", "b"}, {"b", "c"}, {"c", "d"}, {"x", "y"}};
  LogicalTime t = 0;
  for (const auto& [from, to] : edges) {
    engine.schedule_insert(Tuple("edge", {Value("ctl"), Value(from),
                                          Value(to)}),
                           t++);
  }
  engine.run();
  // 3+2+1 chain pairs + the isolated x->y edge.
  EXPECT_EQ(engine.live_tuples("reach").size(), 7u);
  EXPECT_TRUE(engine.is_live(Tuple("reach", {Value("ctl"), Value("a"),
                                             Value("d")})));
  EXPECT_FALSE(engine.is_live(Tuple("reach", {Value("ctl"), Value("a"),
                                              Value("y")})));

  // Deleting the middle edge underives the paths through it, recursively.
  engine.schedule_delete(Tuple("edge", {Value("ctl"), Value("b"),
                                        Value("c")}),
                         100);
  engine.run();
  EXPECT_FALSE(engine.is_live(Tuple("reach", {Value("ctl"), Value("a"),
                                              Value("d")})));
  EXPECT_TRUE(engine.is_live(Tuple("reach", {Value("ctl"), Value("a"),
                                             Value("b")})));
  EXPECT_TRUE(engine.is_live(Tuple("reach", {Value("ctl"), Value("c"),
                                             Value("d")})));
}

TEST(Recursion, CyclicGraphStillConverges) {
  // reach over a cycle converges because the table has set semantics: the
  // re-derivation of a live tuple does not re-trigger rules.
  Engine engine(parse_program(R"(
    table edge(3) base mutable.
    table reach(3) derived.
    rule t1 reach(@C, X, Y) :- edge(@C, X, Y).
    rule t2 reach(@C, X, Z) :- reach(@C, X, Y), edge(@C, Y, Z).
  )"));
  for (const auto& [from, to] :
       std::vector<std::pair<const char*, const char*>>{
           {"a", "b"}, {"b", "c"}, {"c", "a"}}) {
    engine.schedule_insert(Tuple("edge", {Value("ctl"), Value(from),
                                          Value(to)}),
                           0);
  }
  engine.run();
  // All 9 ordered pairs over {a,b,c} are reachable.
  EXPECT_EQ(engine.live_tuples("reach").size(), 9u);
}

// ------------------------------------------------------------ loop guard --

constexpr const char* kLoopProgram = R"(
  table packet(3) base immutable event.
  table route(3) base mutable.
  table packetAt(3) derived event.
  rule r0 packetAt(@Sw, Pkt, Dst) :- packet(@Sw, Pkt, Dst).
  rule r1 packetAt(@Next, Pkt, Dst) :- packetAt(@Sw, Pkt, Dst),
      route(@Sw, Next, Dst).
)";

TEST(LoopGuard, ForwardingLoopHitsTheEventBudget) {
  EngineConfig config;
  config.max_events = 10'000;
  Engine engine(parse_program(kLoopProgram), config);
  // swa -> swb -> swa: event tuples bounce forever without the guard.
  engine.schedule_insert(
      Tuple("route", {Value("swa"), Value("swb"), Value(Ipv4(1, 1, 1, 1))}),
      0);
  engine.schedule_insert(
      Tuple("route", {Value("swb"), Value("swa"), Value(Ipv4(1, 1, 1, 1))}),
      0);
  engine.schedule_insert(
      Tuple("packet", {Value("swa"), Value(1), Value(Ipv4(1, 1, 1, 1))}), 10);
  EXPECT_THROW(engine.run(), ProgramError);
  EXPECT_GE(engine.stats().events_processed, 10'000u);
}

TEST(LoopGuard, DisabledGuardIsHonoredForFiniteRuns) {
  EngineConfig config;
  config.max_events = 0;  // disabled
  Engine engine(parse_program(kLoopProgram), config);
  engine.schedule_insert(
      Tuple("route", {Value("swa"), Value("swb"), Value(Ipv4(1, 1, 1, 1))}),
      0);
  engine.schedule_insert(
      Tuple("packet", {Value("swa"), Value(1), Value(Ipv4(1, 1, 1, 1))}), 10);
  engine.run();  // swb has no route: terminates naturally
  EXPECT_LT(engine.stats().events_processed, 10u);
}

// ------------------------------------------------------------ strict eval --

TEST(StrictEval, ConstraintTypeErrorsAbortWhenRequested) {
  const char* program = R"(
    table a(2) base mutable.
    table b(2) derived.
    rule r1 b(@N, X) :- a(@N, X), X / 0 == 1.
  )";
  {
    Engine lenient((parse_program(program)));
    lenient.schedule_insert(Tuple("a", {Value("n"), Value(1)}), 0);
    lenient.run();  // non-match, logged, no derivation
    EXPECT_TRUE(lenient.live_tuples("b").empty());
  }
  {
    EngineConfig config;
    config.strict_eval = true;
    Engine strict(parse_program(program), config);
    strict.schedule_insert(Tuple("a", {Value("n"), Value(1)}), 0);
    EXPECT_THROW(strict.run(), EvalError);
  }
}

// ----------------------------------------------------------------- ecmp --

TEST(Ecmp, SeededHashBalancingIsDeterministicAndDiagnosable) {
  // Section 4.9 (non-determinism): "in the presence of load balancers that
  // make random decisions, e.g. ECMP with a random seed, DiffProv would
  // need to reason about the balancing mechanism using the seed". Our ECMP
  // models the seed as a mutable base tuple, so the hash is a deterministic
  // function DiffProv can reason about -- and a wrong seed is diagnosable.
  const Program program = parse_program(R"(
    table packet(3) base immutable event.    // (@Sw, Pkt, Dst)
    table ecmpSeed(2) base mutable keys(0).  // (@Sw, Seed)
    table uplink(3) base immutable.          // (@Sw, Index, Next)
    table delivered(3) derived.
    rule e1 delivered(@Next, Pkt, Dst) :-
        packet(@Sw, Pkt, Dst),
        ecmpSeed(@Sw, Seed),
        uplink(@Sw, Index, Next),
        Index == (f_ip_value(Dst) + Seed) % 2.
  )");
  EventLog log;
  log.append_insert(parse_tuple(R"(ecmpSeed(@sw1, 7))"), 0);
  log.append_insert(parse_tuple(R"(uplink(@sw1, 0, "h1"))"), 0);
  log.append_insert(parse_tuple(R"(uplink(@sw1, 1, "h2"))"), 0);
  // dst 1.1.1.0 has an even value: with seed 7 it hashes to index 1 (h2);
  // with seed 8 it would hash to index 0 (h1).
  log.append_insert(parse_tuple("packet(@sw1, 1, 1.1.1.1)"), 100);  // odd+7 -> 0
  log.append_insert(parse_tuple("packet(@sw1, 2, 1.1.1.2)"), 200);  // even+7 -> 1

  LogReplayProvider provider(program, Topology{}, log);
  const BadRun a = provider.replay_bad({});
  const BadRun b = provider.replay_bad({});
  EXPECT_EQ(a.graph->size(), b.graph->size());  // fully deterministic

  // Diagnose "why did packet 2 go to h2 when packet 1 went to h1": the only
  // mutable knob in the hash is the seed, and DiffProv finds the seed value
  // that sends packet 2 the reference way.
  const auto good = locate_tree(*a.graph, parse_tuple("delivered(@h1, 1, 1.1.1.1)"));
  ASSERT_TRUE(good.has_value());
  DiffProv diffprov(program, provider);
  const DiffProvResult result =
      diffprov.diagnose(*good, parse_tuple("delivered(@h2, 2, 1.1.1.2)"));
  ASSERT_TRUE(result.ok()) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_EQ(result.changes[0].after->table(), "ecmpSeed");
}

// ------------------------------------------------------------ no-progress --

TEST(NoProgress, UnreproducibleDifferenceAbortsWithDiagnostic) {
  // The good and bad events have identical-looking spines except that the
  // bad derivation came through a *different rule* over immutable state:
  // no mutable change can reproduce the good rule's firing "instead", so
  // DiffProv must stop and say so (the section 4.9 race-condition analog:
  // applying the same rule does not yield the same effect).
  const Program program = parse_program(R"(
    table ping(2) base immutable event.   // (@N, Id)
    table viaA(2) base immutable.
    table viaB(2) base immutable.
    table pong(3) derived.                // (@N, Id, Tag)
    rule ra pong(@N, Id, 1) :- ping(@N, Id), viaA(@N, Flag).
    rule rb pong(@N, Id, 2) :- ping(@N, Id), viaB(@N, Flag).
  )");
  EventLog log;
  log.append_insert(parse_tuple("viaA(@n, 1)"), 0);
  log.append_insert(parse_tuple("viaB(@m, 1)"), 0);
  log.append_insert(parse_tuple("ping(@n, 1)"), 100);  // -> pong(n, 1, 1)
  log.append_insert(parse_tuple("ping(@m, 2)"), 200);  // -> pong(m, 2, 2)

  LogReplayProvider provider(program, Topology{}, log);
  const BadRun run = provider.replay_bad({});
  const auto good = locate_tree(*run.graph, parse_tuple("pong(@n, 1, 1)"));
  ASSERT_TRUE(good.has_value());
  DiffProv diffprov(program, provider);
  const DiffProvResult result =
      diffprov.diagnose(*good, parse_tuple("pong(@m, 2, 2)"));
  EXPECT_FALSE(result.ok());
  // Either failure mode is informative: the immutable tuple that would have
  // to change, or the no-progress diagnostic.
  EXPECT_TRUE(result.status == DiffProvStatus::kImmutableChange ||
              result.status == DiffProvStatus::kNoProgress)
      << result.to_string();
  EXPECT_FALSE(result.message.empty());
}

}  // namespace
}  // namespace dp
