// End-to-end tests of the paper's four SDN scenarios (section 6.2) on the
// Figure-1 network, plus the unsuitable-reference experiment (section 6.3)
// and the trace generator.
#include <gtest/gtest.h>

#include "diffprov/diffprov.h"
#include "diffprov/treediff.h"
#include "sdn/program.h"
#include "sdn/scenario.h"
#include "sdn/trace.h"

namespace dp::sdn {
namespace {

ProvTree query_tree(const Scenario& s, const Tuple& event) {
  LogReplayProvider provider(s.program, s.topology, s.log);
  const BadRun run = provider.replay_bad({});
  auto tree = locate_tree(*run.graph, event);
  EXPECT_TRUE(tree.has_value()) << event.to_string();
  return std::move(*tree);
}

DiffProvResult run_diffprov(const Scenario& s) {
  const ProvTree good = query_tree(s, s.good_event);
  LogReplayProvider provider(s.program, s.topology, s.log);
  DiffProv diffprov(s.program, provider);
  return diffprov.diagnose(good, s.bad_event);
}

class SdnScenarioTest : public ::testing::TestWithParam<int> {};

TEST_P(SdnScenarioTest, DiffProvPinpointsRootCause) {
  const Scenario s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const DiffProvResult result = run_diffprov(s);
  ASSERT_EQ(result.status, DiffProvStatus::kSuccess)
      << s.name << ": " << result.to_string();
  EXPECT_EQ(result.changes.size(), s.expected_changes)
      << s.name << ": " << result.to_string();
  EXPECT_EQ(result.rounds, s.expected_rounds) << s.name;
  bool found = false;
  for (const auto& change : result.changes) {
    if (change.to_string().find(s.expected_root_cause) != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << s.name << ": expected root cause containing '"
                     << s.expected_root_cause << "' in\n"
                     << result.to_string();
}

TEST_P(SdnScenarioTest, TreesHaveRealisticSize) {
  // The paper's trees have O(100) vertexes (Table 1: 145-201 for SDN).
  const Scenario s = all_scenarios()[static_cast<std::size_t>(GetParam())];
  const ProvTree good = query_tree(s, s.good_event);
  const ProvTree bad = query_tree(s, s.bad_event);
  EXPECT_GT(good.size(), 30u) << s.name;
  EXPECT_GT(bad.size(), 30u) << s.name;
  EXPECT_LT(good.size(), 1000u) << s.name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SdnScenarioTest,
                         ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return all_scenarios()[static_cast<std::size_t>(
                                                      info.param)]
                               .name;
                         });

TEST(SdnScenarios, Sdn1RootCauseIsThePolicyPrefix) {
  const DiffProvResult result = run_diffprov(sdn1());
  ASSERT_TRUE(result.ok()) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u);
  const ChangeRecord& change = result.changes[0];
  ASSERT_TRUE(change.before && change.after);
  EXPECT_EQ(change.before->to_string(),
            "policyRoute(@ctl, \"sw2\", 100, 4.3.2.0/24, \"sw6\")");
  EXPECT_EQ(change.after->to_string(),
            "policyRoute(@ctl, \"sw2\", 100, 4.3.2.0/23, \"sw6\")");
}

TEST(SdnScenarios, Sdn2RootCauseIsTheBlockingPolicy) {
  const DiffProvResult result = run_diffprov(sdn2());
  ASSERT_TRUE(result.ok()) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u);
  const ChangeRecord& change = result.changes[0];
  ASSERT_TRUE(change.before.has_value());
  EXPECT_FALSE(change.after.has_value());  // the conflicting rule is removed
  EXPECT_EQ(change.before->table(), "policyRoute");
}

TEST(SdnScenarios, Sdn3ReferenceLiesInThePast) {
  // The good tree must be queryable even though the rule later expired --
  // the temporal dimension at work.
  const Scenario s = sdn3();
  const ProvTree good = query_tree(s, s.good_event);
  EXPECT_GT(good.size(), 20u);
  const DiffProvResult result = run_diffprov(s);
  ASSERT_TRUE(result.ok()) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_FALSE(result.changes[0].before.has_value());
  ASSERT_TRUE(result.changes[0].after.has_value());
  EXPECT_EQ(result.changes[0].after->table(), "policyRoute");
}

TEST(SdnScenarios, Sdn4TwoRoundsTwoChanges) {
  const DiffProvResult result = run_diffprov(sdn4());
  ASSERT_TRUE(result.ok()) << result.to_string();
  EXPECT_EQ(result.rounds, 2);
  ASSERT_EQ(result.changes.size(), 2u);
  // Both repaired prefixes widen /24 -> /23, on consecutive hops.
  EXPECT_NE(result.changes[0].to_string().find("sw2"), std::string::npos);
  EXPECT_NE(result.changes[1].to_string().find("sw3a"), std::string::npos);
}

TEST(SdnScenarios, MirroredTrafficReachesDpi) {
  // Sanity: the Figure-1 mirror (s5) produces a second delivery at d1.
  const Scenario s = sdn1();
  const ProvTree mirror = query_tree(
      s, Tuple("delivered", {Value("d1"), Value(1), Value(*Ipv4::parse("4.3.2.1")),
                             Value(*Ipv4::parse("8.8.1.1"))}));
  EXPECT_GT(mirror.size(), 20u);
}

// ----------------------------------------------- unsuitable references --

TEST(BadReferences, AllTenFailWithDiagnosticMessages) {
  const Scenario s = sdn1_with_reference_traffic();
  const auto cases = sdn1_bad_references();
  ASSERT_EQ(cases.size(), 10u);
  int seed_mismatches = 0;
  int immutable_failures = 0;
  for (const BadReferenceCase& c : cases) {
    const ProvTree good = query_tree(s, c.reference_event);
    LogReplayProvider provider(s.program, s.topology, s.log);
    DiffProv diffprov(s.program, provider);
    const DiffProvResult result = diffprov.diagnose(good, s.bad_event);
    EXPECT_FALSE(result.ok()) << c.name << " unexpectedly succeeded:\n"
                              << result.to_string();
    EXPECT_FALSE(result.message.empty()) << c.name;
    if (c.expect_seed_mismatch) {
      EXPECT_EQ(result.status, DiffProvStatus::kSeedTypeMismatch)
          << c.name << ": " << result.to_string();
      ++seed_mismatches;
    } else {
      EXPECT_EQ(result.status, DiffProvStatus::kImmutableChange)
          << c.name << ": " << result.to_string();
      ++immutable_failures;
    }
  }
  // The paper's split: 3 type mismatches, 7 immutable-change failures.
  EXPECT_EQ(seed_mismatches, 3);
  EXPECT_EQ(immutable_failures, 7);
}

// ----------------------------------------------------- trace generator --

TEST(Trace, DeterministicAndRateAccurate) {
  TraceConfig config;
  config.rate_mbps = 8.0;  // 8 Mbps / 500 B = 2000 pps
  config.duration_s = 0.1;
  EventLog a;
  EventLog b;
  const TraceStats sa = generate_trace(config, a);
  const TraceStats sb = generate_trace(config, b);
  EXPECT_EQ(sa.packets, 200u);
  EXPECT_DOUBLE_EQ(sa.packets_per_second, 2000.0);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.records()[17], b.records()[17]);  // bitwise determinism
}

TEST(Trace, RespectsMaxPacketsCap) {
  TraceConfig config;
  config.rate_mbps = 1000.0;
  config.duration_s = 1.0;
  config.max_packets = 500;
  EventLog log;
  const TraceStats stats = generate_trace(config, log);
  EXPECT_EQ(stats.packets, 500u);
  // The offered rate is still reported for scaling.
  EXPECT_GT(stats.packets_per_second, 100000.0);
}

TEST(Trace, SourcesFallIntoConfiguredSubnets) {
  TraceConfig config;
  config.rate_mbps = 4.0;
  config.duration_s = 0.1;
  config.src_subnets = {"4.3.2.0/24"};
  EventLog log;
  generate_trace(config, log);
  const auto subnet = *IpPrefix::parse("4.3.2.0/24");
  for (const LogRecord& r : log.records()) {
    EXPECT_TRUE(subnet.contains(r.tuple().at(2).as_ip()))
        << r.tuple().to_string();
  }
}

TEST(Trace, TimestampsFollowInterarrival) {
  TraceConfig config;
  config.rate_mbps = 4.0;  // 1000 pps -> 1000 us spacing
  config.duration_s = 0.01;
  EventLog log;
  generate_trace(config, log);
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log.records()[1].time - log.records()[0].time, 1000);
}

TEST(Trace, ReplaysThroughTheNetwork) {
  // Background traffic must actually flow: replay SDN1 with 100 extra
  // packets and verify deliveries happen for them.
  Scenario s = sdn1();
  TraceConfig config;
  config.rate_mbps = 4.0;
  config.duration_s = 0.1;
  config.start_time = 5000;
  EventLog trace;
  const TraceStats stats = generate_trace(config, trace);
  for (const LogRecord& r : trace.records()) s.log.append(r);

  LogReplayProvider provider(s.program, s.topology, s.log);
  const BadRun run = provider.replay_bad({});
  std::size_t delivered = 0;
  run.state->scan_table("w2", "delivered", kTimeInfinity - 1,
                        [&](const Tuple&) { ++delivered; });
  // Every background packet is from one of the four subnets; all are routed
  // somewhere (w1 or w2), and the 10.0/8 + 128.32/16 + 4.3.3/24 ones reach
  // w2 alongside the scenario's own bad packet.
  EXPECT_GT(delivered, stats.packets / 4);
}

}  // namespace
}  // namespace dp::sdn
