// Randomized round-trip property tests for the wire-facing serialization
// layer (EventLog binary + text, Checkpoint), plus the hardening contract:
// truncated or corrupt input is rejected with an error naming where decoding
// stopped (byte offset for binary, line number for text) -- the diffprovd
// daemon feeds these decoders bytes straight off the wire.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ndlog/parser.h"
#include "replay/checkpoint.h"
#include "replay/event_log.h"
#include "replay/replay_engine.h"
#include "sdn/scenario.h"
#include "util/rng.h"

namespace dp {
namespace {

// ------------------------------------------------- random generators --

std::string random_name(Rng& rng) {
  static const char* kAlpha = "abcdefghijklmnopqrstuvwxyz";
  std::string name;
  const std::size_t len = 1 + rng.next_below(10);
  for (std::size_t i = 0; i < len; ++i) name += kAlpha[rng.next_below(26)];
  return name;
}

/// Arbitrary bytes for the binary format (length-prefixed, so anything
/// goes -- including NULs, newlines and quotes).
std::string random_binary_string(Rng& rng) {
  std::string s;
  const std::size_t len = rng.next_below(24);
  for (std::size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng.next_below(256));
  }
  return s;
}

/// Strings the text format can carry in a quoted position: anything except
/// the quote/backslash escapes, newlines, '#' (comment marker) and '@'/')'
/// (the from_text line scanner keys on the last ones outside quotes).
std::string random_text_string(Rng& rng) {
  static const char* kSafe =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-.:/";
  std::string s;
  const std::size_t len = rng.next_below(16);
  for (std::size_t i = 0; i < len; ++i) s += kSafe[rng.next_below(68)];
  return s;
}

Value random_value(Rng& rng, bool text_safe, bool location = false) {
  switch (rng.next_below(5)) {
    case 0:
      return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 1:
      // Quarters render exactly under %g (within 6 significant digits), so
      // the text rendering parses back to the same double; the binary format
      // round-trips raw bits and gets the full-precision variant.
      if (text_safe) return Value(rng.next_in(-9999, 9999) / 4.0);
      return Value(rng.next_in(-1'000'000'000, 1'000'000'000) / 1024.0);
    case 2:
      // Tuple::to_string renders a string in field 0 bare (`@node`), so a
      // text round-trip needs an identifier there; later fields are quoted
      // and carry anything in the safe set.
      if (text_safe && location) return Value(random_name(rng));
      return text_safe ? Value(random_text_string(rng))
                       : Value(random_binary_string(rng));
    case 3:
      return Value(Ipv4(static_cast<std::uint32_t>(rng.next_u64())));
    default:
      return Value(IpPrefix(Ipv4(static_cast<std::uint32_t>(rng.next_u64())),
                            static_cast<int>(rng.next_below(33))));
  }
}

EventLog random_log(Rng& rng, bool text_safe) {
  EventLog log;
  const std::size_t records = rng.next_below(30);
  LogicalTime t = 0;
  for (std::size_t i = 0; i < records; ++i) {
    t += static_cast<LogicalTime>(rng.next_below(100));
    std::vector<Value> values;
    // The text grammar needs at least one field (`name()` does not parse);
    // the binary format handles arity 0.
    const std::size_t arity =
        text_safe ? 1 + rng.next_below(5) : rng.next_below(6);
    for (std::size_t j = 0; j < arity; ++j) {
      values.push_back(random_value(rng, text_safe, /*location=*/j == 0));
    }
    Tuple tuple(random_name(rng), std::move(values));
    if (rng.next_below(4) == 0) {
      log.append_delete(std::move(tuple), t);
    } else {
      log.append_insert(std::move(tuple), t);
    }
  }
  return log;
}

// -------------------------------------------------- round-trip laws --

TEST(SerializationProperty, BinaryRoundTripPreservesEveryRecord) {
  Rng rng(20260806);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const EventLog log = random_log(rng, /*text_safe=*/false);
    std::ostringstream out;
    log.serialize(out);
    const std::string bytes = out.str();
    // byte_size() is maintained incrementally and must equal the actual
    // serialized length (figures 5/6 of the paper bill log size in bytes).
    ASSERT_EQ(log.byte_size(), bytes.size()) << "iteration " << iteration;

    std::istringstream in(bytes);
    const EventLog back = EventLog::deserialize(in);
    ASSERT_EQ(back.records(), log.records()) << "iteration " << iteration;
    ASSERT_EQ(back.byte_size(), log.byte_size());
  }
}

TEST(SerializationProperty, TextRoundTripPreservesEveryRecord) {
  Rng rng(424242);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const EventLog log = random_log(rng, /*text_safe=*/true);
    const EventLog back = EventLog::from_text(log.to_text());
    ASSERT_EQ(back.records(), log.records()) << "iteration " << iteration;
    ASSERT_EQ(back.byte_size(), log.byte_size());
  }
}

TEST(SerializationProperty, ScenarioLogsSurviveBothFormats) {
  for (sdn::Scenario& scenario : sdn::all_scenarios()) {
    std::ostringstream out;
    scenario.log.serialize(out);
    EXPECT_EQ(scenario.log.byte_size(), out.str().size()) << scenario.name;
    std::istringstream in(out.str());
    EXPECT_EQ(EventLog::deserialize(in).records(), scenario.log.records())
        << scenario.name;
    EXPECT_EQ(EventLog::from_text(scenario.log.to_text()).records(),
              scenario.log.records())
        << scenario.name;
  }
}

TEST(SerializationProperty, CheckpointRoundTripsThroughBytes) {
  sdn::Scenario scenario = sdn::all_scenarios()[0];
  const ReplayResult run =
      replay(scenario.program, scenario.topology, scenario.log);
  const Checkpoint checkpoint = Checkpoint::capture(*run.engine);
  ASSERT_FALSE(checkpoint.base_tuples().empty());

  std::ostringstream out;
  checkpoint.serialize(out);
  std::istringstream in(out.str());
  const Checkpoint back = Checkpoint::deserialize(in);
  EXPECT_EQ(back.base_tuples(), checkpoint.base_tuples());
  EXPECT_EQ(back.captured_at(), checkpoint.captured_at());
}

// ------------------------------------------- malformed-input rejection --

std::string serialized(const EventLog& log) {
  std::ostringstream out;
  log.serialize(out);
  return out.str();
}

EventLog small_log() {
  EventLog log;
  log.append_insert(Tuple("link", {Value("a"), Value("b"), Value(3)}), 10);
  log.append_insert(
      Tuple("route", {Value(IpPrefix(Ipv4(10, 0, 0, 0), 8)), Value("c")}), 20);
  return log;
}

TEST(SerializationHardening, EveryTruncationPointIsRejectedWithAnOffset) {
  const std::string bytes = serialized(small_log());
  // Chopping the stream anywhere mid-record must throw -- and the message
  // must carry a byte offset no further than the cut.
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    // Cuts at record boundaries parse cleanly as a shorter log; skip them.
    std::istringstream in(bytes.substr(0, cut));
    try {
      const EventLog log = EventLog::deserialize(in);
      ASSERT_LT(log.byte_size(), bytes.size());
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      const std::size_t pos = what.find("byte offset ");
      ASSERT_NE(pos, std::string::npos) << "cut=" << cut << ": " << what;
      const std::size_t offset =
          std::stoull(what.substr(pos + std::string("byte offset ").size()));
      EXPECT_LE(offset, cut) << what;
    }
  }
}

TEST(SerializationHardening, CorruptOpByteNamesItsOffset) {
  std::string bytes = serialized(small_log());
  bytes[0] = 7;  // ops are 0 (insert) / 1 (delete)
  std::istringstream in(bytes);
  try {
    EventLog::deserialize(in);
    FAIL() << "corrupt op byte accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt op byte 7"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset 0"), std::string::npos)
        << e.what();
  }
}

TEST(SerializationHardening, CorruptValueTagNamesItsOffset) {
  EventLog log;
  log.append_insert(Tuple("t", {Value(1)}), 5);
  std::string bytes = serialized(log);
  // Layout: magic(4) count(4) name-len(4) name(1) arity(2) tag(1) payload(8).
  const std::size_t tag_offset = 4 + 4 + 4 + 1 + 2;
  bytes[tag_offset] = 99;
  std::istringstream in(bytes);
  try {
    EventLog::deserialize(in);
    FAIL() << "corrupt value tag accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt value tag 99"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what())
                  .find("byte offset " + std::to_string(tag_offset)),
              std::string::npos)
        << e.what();
  }
}

TEST(SerializationHardening, ImplausibleLengthsAreRejectedNotAllocated) {
  // A name length of 0xFFFFFFFF must be rejected by the plausibility cap,
  // not handed to std::string's allocator.
  std::string bytes = serialized(small_log());
  bytes[9] = '\xff';  // high byte of the table-name length
  std::istringstream in(bytes);
  EXPECT_THROW(EventLog::deserialize(in), std::runtime_error);
}

TEST(SerializationHardening, RefTableIndexOutOfRangeIsRejected) {
  EventLog log;
  log.append_insert(Tuple("t", {Value(1)}), 5);
  std::string bytes = serialized(log);
  // The only record's ref-index is the last 4 bytes; point it past the table.
  bytes[bytes.size() - 1] = 9;
  std::istringstream in(bytes);
  try {
    EventLog::deserialize(in);
    FAIL() << "out-of-range ref-table index accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ref-table index 9"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
}

TEST(SerializationHardening, ImplausibleRefTableCountIsRejectedNotAllocated) {
  std::string bytes = serialized(small_log());
  bytes[4] = '\xff';  // high byte of the ref-table count
  std::istringstream in(bytes);
  EXPECT_THROW(EventLog::deserialize(in), std::runtime_error);
}

TEST(SerializationFormat, RefTableSerializesEachDistinctTupleOnce) {
  // A tuple toggled many times costs its payload once (in the ref table)
  // plus a fixed 13 bytes per record -- the compression the interned store
  // makes possible on the wire.
  EventLog log;
  const Tuple config("cfg", {Value("node"), Value(42)});
  log.append_insert(config, 1);
  const std::uint64_t after_first = log.byte_size();
  for (int i = 0; i < 10; ++i) {
    log.append_delete(config, 2 * i + 2);
    log.append_insert(config, 2 * i + 3);
  }
  EXPECT_EQ(log.ref_table().size(), 1u);
  EXPECT_EQ(log.byte_size(), after_first + 20 * 13);
  std::ostringstream out;
  log.serialize(out);
  EXPECT_EQ(log.byte_size(), out.str().size());
  std::istringstream in(out.str());
  EXPECT_EQ(EventLog::deserialize(in).records(), log.records());
}

TEST(SerializationFormat, LegacyFlatFormatStillDecodes) {
  // Pre-ref-table logs inlined the tuple payload in every record; the
  // decoder must keep reading them (no magic, records start with an op
  // byte). Hand-encode one: op(1) time(8) name-len(4) name arity(2) fields.
  std::string bytes;
  auto put32 = [&bytes](std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      bytes += static_cast<char>((v >> shift) & 0xff);
    }
  };
  auto put64 = [&bytes, &put32](std::uint64_t v) {
    put32(static_cast<std::uint32_t>(v >> 32));
    put32(static_cast<std::uint32_t>(v));
  };
  for (int i = 0; i < 2; ++i) {
    bytes += '\0';  // op: insert
    put64(static_cast<std::uint64_t>(7 + i));
    put32(1);  // table-name length
    bytes += 't';
    bytes += '\0';
    bytes += '\x01';  // arity 1
    bytes += '\0';    // tag: int
    put64(static_cast<std::uint64_t>(100 + i));
  }
  std::istringstream in(bytes);
  const EventLog log = EventLog::deserialize(in);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].tuple(), Tuple("t", {Value(100)}));
  EXPECT_EQ(log.records()[1].tuple(), Tuple("t", {Value(101)}));
  EXPECT_EQ(log.records()[0].time, 7);
  EXPECT_EQ(log.records()[1].time, 8);
}

TEST(SerializationHardening, TextErrorsNameTheLine) {
  const char* text =
      "+ link(\"a\", \"b\", 3) @ 10\n"
      "+ route(10.0.0.0/8) 20\n";  // missing the '@'
  try {
    EventLog::from_text(text);
    FAIL() << "malformed line accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }

  try {
    EventLog::from_text("+ link(\"a\") garbage @ 5\n");
    FAIL() << "trailing content accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing content"),
              std::string::npos)
        << e.what();
  }

  try {
    EventLog::from_text("* link(\"a\") @ 5\n");
    FAIL() << "bad op char accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
}

TEST(SerializationHardening, CheckpointRejectsDeletesAndMixedTimes) {
  // A checkpoint stream containing a delete is not a snapshot.
  EventLog with_delete;
  with_delete.append_insert(Tuple("t", {Value(1)}), 5);
  with_delete.append_delete(Tuple("t", {Value(2)}), 5);
  std::istringstream in1(serialized(with_delete));
  try {
    Checkpoint::deserialize(in1);
    FAIL() << "delete record accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("record 1 is a delete"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }

  // Two capture times in one stream: also not a snapshot.
  EventLog mixed_times;
  mixed_times.append_insert(Tuple("t", {Value(1)}), 5);
  mixed_times.append_insert(Tuple("t", {Value(2)}), 6);
  std::istringstream in2(serialized(mixed_times));
  EXPECT_THROW(Checkpoint::deserialize(in2), std::runtime_error);

  // The empty checkpoint is fine (a system with no stored base state).
  std::istringstream in3("");
  EXPECT_TRUE(Checkpoint::deserialize(in3).base_tuples().empty());
}

}  // namespace
}  // namespace dp
