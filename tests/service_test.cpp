// Tests for the concurrent diagnosis service (src/service): byte-identity
// with the one-shot CLI, result caching and single-flight coalescing, warm
// sessions skipping replays, admission control (shed, not block), cancel,
// and drain-on-shutdown. The concurrency tests are the TSan targets: N
// threads hammer the service with duplicate and distinct queries across
// several scenarios, and every response must equal the single-threaded CLI
// answer while exactly one underlying run happens per distinct query.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_check.h"
#include "obs/metrics.h"
#include "service/bounded_queue.h"
#include "service/cache.h"
#include "service/service.h"
#include "tools/cli.h"

namespace dp::service {
namespace {

constexpr const char* kSdn1Good = "delivered(@w1, 1, 4.3.2.1, 8.8.1.1)";
constexpr const char* kSdn1Bad = "delivered(@w2, 2, 4.3.3.1, 8.8.1.1)";

/// The single-threaded in-process CLI: the byte-identity oracle.
struct CliAnswer {
  int exit_code;
  std::string out;
  std::string err;
};

CliAnswer run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int exit_code = cli::run(args, out, err);
  return {exit_code, out.str(), err.str()};
}

QueryStatus wait_done(DiagnosisService& service, const SubmitOutcome& s) {
  EXPECT_TRUE(s.ok()) << s.error;
  auto status = service.wait(s.id);
  EXPECT_TRUE(status.has_value());
  return *status;
}

// ----------------------------------------------------- building blocks --

TEST(BoundedQueue, ShedsWhenFullAndDrainsOnClose) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full: shed, not block
  EXPECT_EQ(queue.size(), 2u);

  queue.close();
  EXPECT_FALSE(queue.try_push(4));  // closed
  EXPECT_EQ(queue.pop(), 1);       // drain continues after close
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);  // closed + empty: consumer exits
}

TEST(BoundedQueue, CloseAndClearReturnsOrphans) {
  BoundedQueue<int> queue(4);
  queue.try_push(1);
  queue.try_push(2);
  const std::vector<int> orphans = queue.close_and_clear();
  EXPECT_EQ(orphans, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(ResultCache, LruEvictionKeepsRecentlyUsed) {
  ResultCache cache(2);
  cache.put("a", {0, "A", ""});
  cache.put("b", {0, "B", ""});
  EXPECT_TRUE(cache.get("a"));  // refresh a; b is now LRU
  cache.put("c", {0, "C", ""});
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.get("b"));
  EXPECT_TRUE(cache.get("a"));
  EXPECT_TRUE(cache.get("c"));
}

TEST(ResultCache, KeyDistinguishesEveryQueryDimension) {
  const std::string base = make_cache_key(1, "bad()", "good()", false, 0);
  EXPECT_NE(base, make_cache_key(2, "bad()", "good()", false, 0));
  EXPECT_NE(base, make_cache_key(1, "bad2()", "good()", false, 0));
  EXPECT_NE(base, make_cache_key(1, "bad()", "<auto>", false, 0));
  EXPECT_NE(base, make_cache_key(1, "bad()", "good()", true, 0));
  EXPECT_NE(base, make_cache_key(1, "bad()", "good()", false, 3));
  EXPECT_EQ(base, make_cache_key(1, "bad()", "good()", false, 0));
}

TEST(StripedResultCache, SingleFlightAdmissionPerKey) {
  StripedResultCache cache(/*capacity=*/16, /*stripes=*/4);
  auto leader = std::make_shared<int>(7);

  // First admission: no cached result, no leader in flight -> the
  // enqueue_leader callback runs and its job is registered.
  auto admission = cache.admit(
      "key", nullptr, [](const std::shared_ptr<void>&) { FAIL(); },
      [&]() -> std::shared_ptr<void> { return leader; });
  EXPECT_EQ(admission, StripedResultCache::Admission::kAccepted);

  // Duplicate while in flight: coalesces onto the registered leader.
  std::shared_ptr<void> seen;
  admission = cache.admit(
      "key", nullptr, [&](const std::shared_ptr<void>& l) { seen = l; },
      [&]() -> std::shared_ptr<void> {
        ADD_FAILURE() << "duplicate must not become a second leader";
        return nullptr;
      });
  EXPECT_EQ(admission, StripedResultCache::Admission::kCoalesced);
  EXPECT_EQ(seen, leader);

  // complete() publishes and retires the leader in one critical section:
  // from here on duplicates hit the cache, and the in-flight entry is gone.
  cache.complete("key", {0, "answer", "", ""});
  CachedResult hit;
  admission = cache.admit(
      "key", &hit, [](const std::shared_ptr<void>&) { FAIL(); },
      []() -> std::shared_ptr<void> {
        ADD_FAILURE() << "cached key must not start a new run";
        return nullptr;
      });
  EXPECT_EQ(admission, StripedResultCache::Admission::kHit);
  EXPECT_EQ(hit.out, "answer");
  EXPECT_EQ(cache.take_inflight("key"), nullptr);
}

TEST(StripedResultCache, ShedLeavesNoLeaderBehind) {
  StripedResultCache cache(/*capacity=*/16, /*stripes=*/2);
  // enqueue_leader returning null models "queue full": nothing may be
  // registered, so the next attempt must retry the enqueue rather than
  // coalesce onto a job that never entered the queue.
  auto admission = cache.admit(
      "key", nullptr, [](const std::shared_ptr<void>&) { FAIL(); },
      []() -> std::shared_ptr<void> { return nullptr; });
  EXPECT_EQ(admission, StripedResultCache::Admission::kShed);

  auto leader = std::make_shared<int>(1);
  admission = cache.admit(
      "key", nullptr,
      [](const std::shared_ptr<void>&) {
        FAIL() << "shed admission must not have registered a leader";
      },
      [&]() -> std::shared_ptr<void> { return leader; });
  EXPECT_EQ(admission, StripedResultCache::Admission::kAccepted);
  EXPECT_EQ(cache.take_inflight("key"), leader);
}

TEST(StripedResultCache, LruIsPerStripeAndHitsCountPerStripe) {
  obs::MetricsRegistry registry;
  // Total capacity 8 over 4 stripes = 2 entries per stripe.
  StripedResultCache cache(/*capacity=*/8, /*stripes=*/4, &registry);
  ASSERT_EQ(cache.stripe_count(), 4u);

  // Collect three keys that land in the same stripe: the third insert must
  // evict that stripe's LRU entry even though the cache as a whole is far
  // under its total capacity.
  std::vector<std::string> same_stripe;
  const std::size_t target = cache.stripe_of("probe");
  for (int i = 0; same_stripe.size() < 3 && i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (cache.stripe_of(key) == target) same_stripe.push_back(key);
  }
  ASSERT_EQ(same_stripe.size(), 3u);

  cache.complete(same_stripe[0], {0, "0", "", ""});
  cache.complete(same_stripe[1], {0, "1", "", ""});
  EXPECT_TRUE(cache.get(same_stripe[0]));  // refresh: [1] becomes the LRU
  cache.complete(same_stripe[2], {0, "2", "", ""});
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.get(same_stripe[1]));
  EXPECT_TRUE(cache.get(same_stripe[0]));
  EXPECT_TRUE(cache.get(same_stripe[2]));
  EXPECT_EQ(cache.size(), 2u);

  // Hits are attributed to the key's stripe.
  const std::string series =
      "dp.service.cache.stripe." + std::to_string(target) + ".hits";
  EXPECT_GE(registry.counter(series).value(), 3u);
}

TEST(BoundedQueue, ConcurrentProducersAndConsumersDeliverEverythingOnce) {
  // The TSan stress for the per-shard queue: 8 producers, 8 consumers, no
  // item lost, duplicated, or delivered after close-and-drain.
  constexpr int kProducers = 8;
  constexpr int kConsumers = 8;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> queue(32);

  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        popped_sum.fetch_add(*item, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  long long pushed_sum = 0;
  std::atomic<long long> pushed_sums{0};
  std::atomic<int> pushed_count{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      long long local = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        // Spin on shed: the stress wants every item through the queue, so a
        // full queue means "try again", exercising the push/pop race.
        while (!queue.try_push(value)) std::this_thread::yield();
        local += value;
      }
      pushed_sums.fetch_add(local, std::memory_order_relaxed);
      pushed_count.fetch_add(kPerProducer, std::memory_order_relaxed);
    });
  }
  for (auto& producer : producers) producer.join();
  pushed_sum = pushed_sums.load();
  queue.close();  // consumers drain the remainder, then exit on nullopt
  for (auto& consumer : consumers) consumer.join();

  EXPECT_EQ(popped_count.load(), pushed_count.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

// -------------------------------------------------------- byte identity --

TEST(Service, AnswersAreByteIdenticalToTheCli) {
  const CliAnswer expected =
      run_cli({"--scenario", "sdn1", "--good", kSdn1Good, "--bad", kSdn1Bad});
  ASSERT_EQ(expected.exit_code, 0);

  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 2;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query query;
  query.scenario = "sdn1";
  query.good = kSdn1Good;
  query.bad = kSdn1Bad;
  const QueryStatus status = wait_done(service, service.submit(query));
  EXPECT_EQ(status.state, QueryState::kDone);
  EXPECT_EQ(status.result.out, expected.out);
  EXPECT_EQ(status.result.err, expected.err);
  EXPECT_EQ(status.result.exit_code, expected.exit_code);
}

TEST(Service, AutoReferenceAndMinimizeMatchTheCliToo) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  {
    const CliAnswer expected =
        run_cli({"--scenario", "sdn1", "--auto-reference"});
    Query query;
    query.scenario = "sdn1";
    query.auto_reference = true;
    const QueryStatus status = wait_done(service, service.submit(query));
    EXPECT_EQ(status.result.out, expected.out);
    EXPECT_EQ(status.result.exit_code, expected.exit_code);
  }
  {
    const CliAnswer expected = run_cli({"--scenario", "sdn2", "--minimize"});
    Query query;
    query.scenario = "sdn2";
    query.minimize = true;
    const QueryStatus status = wait_done(service, service.submit(query));
    EXPECT_EQ(status.result.out, expected.out);
    EXPECT_EQ(status.result.exit_code, expected.exit_code);
  }
}

TEST(Service, InlineProblemsMatchTheCliFilePath) {
  // The same program/log text through both front-ends: --program/--log
  // files for the CLI, inline JSON-style text for the service.
  const std::string program_text = R"(
    table packet(3) base immutable event.
    table flowEntry(4) keys(0, 2) base mutable.
    table delivered(3) derived.
    table packetAt(3) derived event.
    rule r0 packetAt(@Sw, Pkt, Dst) :- packet(@Sw, Pkt, Dst).
    rule r1 argmax Prio
      delivered(@Next, Pkt, Dst) :-
        packetAt(@Sw, Pkt, Dst),
        flowEntry(@Sw, Prio, Prefix, Next),
        f_matches(Dst, Prefix) == 1.
  )";
  const std::string log_text =
      "+ flowEntry(@S1, 10, 10.0.0.0/8, \"h1\") @ 0\n"
      "+ flowEntry(@S1, 5, 20.0.0.0/8, \"h2\") @ 0\n"
      "+ packet(@S1, 1, 10.1.1.1) @ 100\n"
      "+ packet(@S1, 2, 20.1.1.1) @ 200\n";
  const std::string dir = ::testing::TempDir();
  const std::string program_path = dir + "/service_test_program.ndlog";
  const std::string log_path = dir + "/service_test_log.txt";
  std::ofstream(program_path) << program_text;
  std::ofstream(log_path) << log_text;

  const std::string good = "delivered(@h1, 1, 10.1.1.1)";
  const std::string bad = "delivered(@h2, 2, 20.1.1.1)";
  const CliAnswer expected = run_cli({"--program", program_path, "--log",
                                      log_path, "--good", good, "--bad", bad});

  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);
  Query query;
  query.program_text = program_text;
  query.log_text = log_text;
  query.good = good;
  query.bad = bad;
  const QueryStatus status = wait_done(service, service.submit(query));
  EXPECT_EQ(status.result.out, expected.out);
  EXPECT_EQ(status.result.err, expected.err);
  EXPECT_EQ(status.result.exit_code, expected.exit_code);

  // Same text again: same session, same cache line.
  const QueryStatus again = wait_done(service, service.submit(query));
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.result.out, expected.out);
}

TEST(Service, ValidationErrorsAreExplicit) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query query;  // names nothing
  EXPECT_FALSE(service.submit(query).ok());

  query.scenario = "no-such-scenario";
  const SubmitOutcome unknown = service.submit(query);
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error.find("no-such-scenario"), std::string::npos);

  query.scenario = "sdn1";
  query.bad = "not a tuple ((";
  const SubmitOutcome malformed = service.submit(query);
  EXPECT_FALSE(malformed.ok());
  EXPECT_NE(malformed.error.find("bad tuple"), std::string::npos);
}

// --------------------------------------- cache, coalescing, warm state --

TEST(Service, RepeatQueryHitsTheCacheWithoutASecondRun) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query query;
  query.scenario = "sdn1";
  const QueryStatus first = wait_done(service, service.submit(query));
  EXPECT_FALSE(first.cache_hit);
  const QueryStatus second = wait_done(service, service.submit(query));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.out, first.result.out);

  EXPECT_EQ(registry.counter("dp.service.runs").value(), 1u);
  EXPECT_EQ(registry.counter("dp.service.cache.hits").value(), 1u);
  EXPECT_EQ(registry.counter("dp.service.cache.misses").value(), 1u);
}

TEST(Service, WarmSessionSkipsTheReplayOnLaterQueries) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query query;
  query.scenario = "sdn1";
  wait_done(service, service.submit(query));
  // A *distinct* query against the same scenario (different key, so no
  // cache hit): the resident run serves it without a fresh full replay.
  query.minimize = true;
  wait_done(service, service.submit(query));

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.per_session.size(), 1u);
  const SessionStats& session = stats.per_session[0].second;
  EXPECT_EQ(session.queries, 2u);
  EXPECT_EQ(session.cold_replays, 1u);
  EXPECT_EQ(session.warm_hits, 1u);
  EXPECT_EQ(registry.counter("dp.service.session.cold_replays").value(), 1u);
  EXPECT_EQ(registry.counter("dp.service.session.warm_hits").value(), 1u);
}

TEST(SessionManager, ByteBudgetCoolsLruSessionsByMeasuredFootprint) {
  obs::MetricsRegistry registry;
  // A 1-byte budget: any warm session exceeds it, so after warming two
  // sessions the LRU one must be cooled while the most recent is spared
  // (cooling it too would defeat the warm tier entirely).
  SessionManager manager(/*max_warm=*/8, /*warm_bytes_budget=*/1,
                         ReplayOptions{}, registry);
  std::string error;
  std::shared_ptr<WarmSession> a = manager.get_scenario("sdn1", error);
  ASSERT_NE(a, nullptr) << error;
  std::shared_ptr<WarmSession> b = manager.get_scenario("sdn2", error);
  ASSERT_NE(b, nullptr) << error;
  {
    std::lock_guard<std::mutex> lock(a->mutex());
    a->ensure_warm();
    // Footprint is measured, not assumed: a replayed SDN1 graph is far more
    // than the 1-byte floor.
    EXPECT_GT(a->resident_bytes(), 1u);
  }
  {
    std::lock_guard<std::mutex> lock(b->mutex());
    b->ensure_warm();
  }
  manager.enforce_budget();
  {
    std::lock_guard<std::mutex> lock(a->mutex());
    EXPECT_FALSE(a->is_warm());
    EXPECT_EQ(a->resident_bytes(), 0u);
  }
  {
    std::lock_guard<std::mutex> lock(b->mutex());
    EXPECT_TRUE(b->is_warm());
  }
  EXPECT_EQ(registry.counter("dp.service.session.evictions").value(), 1u);
  EXPECT_EQ(manager.warm_bytes(), b->resident_bytes());
  EXPECT_EQ(registry.gauge("dp.service.session.resident_bytes").value(),
            static_cast<std::int64_t>(manager.warm_bytes()));
}

TEST(SessionManager, GenerousByteBudgetKeepsTheWarmSetResident) {
  obs::MetricsRegistry registry;
  SessionManager manager(/*max_warm=*/8, /*warm_bytes_budget=*/1ull << 30,
                         ReplayOptions{}, registry);
  std::string error;
  std::shared_ptr<WarmSession> a = manager.get_scenario("sdn1", error);
  ASSERT_NE(a, nullptr) << error;
  std::shared_ptr<WarmSession> b = manager.get_scenario("sdn2", error);
  ASSERT_NE(b, nullptr) << error;
  for (const auto& session : {a, b}) {
    std::lock_guard<std::mutex> lock(session->mutex());
    session->ensure_warm();
  }
  manager.enforce_budget();
  for (const auto& session : {a, b}) {
    std::lock_guard<std::mutex> lock(session->mutex());
    EXPECT_TRUE(session->is_warm());
  }
  EXPECT_EQ(registry.counter("dp.service.session.evictions").value(), 0u);
  EXPECT_EQ(manager.warm_bytes(), a->resident_bytes() + b->resident_bytes());
}

TEST(Service, BypassCacheAlwaysRuns) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query query;
  query.scenario = "sdn1";
  query.bypass_cache = true;
  const QueryStatus first = wait_done(service, service.submit(query));
  const QueryStatus second = wait_done(service, service.submit(query));
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.result.out, first.result.out);
  EXPECT_EQ(registry.counter("dp.service.runs").value(), 2u);
}

// ------------------------------------------------- admission + cancel --

/// Holds every job at the on_job_start hook until release() -- makes queue
/// occupancy deterministic for the shed/cancel tests.
class WorkerGate {
 public:
  void wait_at_gate() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrived_;
    arrived_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
  }
  void await_arrivals(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    arrived_cv_.wait(lock, [&] { return arrived_ >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable arrived_cv_, open_cv_;
  int arrived_ = 0;
  bool open_ = false;
};

TEST(Service, FullQueueShedsInsteadOfBlocking) {
  WorkerGate gate;
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.metrics = &registry;
  config.on_job_start = [&gate] { gate.wait_at_gate(); };
  DiagnosisService service(config);

  // Three distinct keys against one scenario. A occupies the worker (held
  // at the gate), B occupies the single queue slot, C must be shed.
  Query a, b, c;
  a.scenario = b.scenario = c.scenario = "sdn1";
  b.minimize = true;
  c.auto_reference = true;

  const SubmitOutcome sa = service.submit(a);
  ASSERT_TRUE(sa.ok());
  gate.await_arrivals(1);  // the worker holds A; the queue is empty again

  const SubmitOutcome sb = service.submit(b);
  ASSERT_TRUE(sb.ok());
  const SubmitOutcome sc = service.submit(c);
  EXPECT_FALSE(sc.ok());
  EXPECT_TRUE(sc.shed);
  EXPECT_NE(sc.error.find("queue full"), std::string::npos);
  EXPECT_EQ(registry.counter("dp.service.shed").value(), 1u);

  // A duplicate of the queued query still coalesces -- duplicates never
  // occupy queue slots, so they are not shed.
  const SubmitOutcome sb2 = service.submit(b);
  EXPECT_TRUE(sb2.ok());

  gate.release();
  EXPECT_EQ(wait_done(service, sa).state, QueryState::kDone);
  EXPECT_EQ(wait_done(service, sb).state, QueryState::kDone);
  const QueryStatus dup = wait_done(service, sb2);
  EXPECT_EQ(dup.state, QueryState::kDone);
  EXPECT_TRUE(dup.coalesced);
}

TEST(Service, CancelStopsQueuedQueriesOnly) {
  WorkerGate gate;
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.metrics = &registry;
  config.on_job_start = [&gate] { gate.wait_at_gate(); };
  DiagnosisService service(config);

  Query a, b;
  a.scenario = b.scenario = "sdn1";
  b.minimize = true;
  const SubmitOutcome sa = service.submit(a);
  gate.await_arrivals(1);
  const SubmitOutcome sb = service.submit(b);

  EXPECT_FALSE(service.cancel(sa.id)) << "A is already running";
  EXPECT_TRUE(service.cancel(sb.id));
  EXPECT_FALSE(service.cancel(sb.id)) << "second cancel is a no-op";
  EXPECT_EQ(registry.counter("dp.service.cancelled").value(), 1u);

  gate.release();
  EXPECT_EQ(wait_done(service, sa).state, QueryState::kDone);
  const auto cancelled = service.wait(sb.id);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, QueryState::kCancelled);
  // The cancelled job never ran: one run for A only.
  EXPECT_EQ(registry.counter("dp.service.runs").value(), 1u);
}

TEST(Service, ShutdownDrainsQueuedWork) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 1;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query a, b;
  a.scenario = "sdn1";
  b.scenario = "sdn2";
  const SubmitOutcome sa = service.submit(a);
  const SubmitOutcome sb = service.submit(b);
  service.shutdown(/*drain=*/true);

  EXPECT_EQ(service.poll(sa.id)->state, QueryState::kDone);
  EXPECT_EQ(service.poll(sb.id)->state, QueryState::kDone);
  EXPECT_FALSE(service.submit(a).ok()) << "no admissions after shutdown";
}

// --------------------------------------- watchdog + explain profiles --

TEST(Service, WatchdogFlagsAStuckWorkerAndRecovers) {
  WorkerGate gate;
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 1;
  config.metrics = &registry;
  // A deliberately tiny deadline with a fast watchdog: the gated worker
  // must be flagged within a few ticks.
  config.worker_deadline = std::chrono::milliseconds(50);
  config.watchdog_interval = std::chrono::milliseconds(10);
  config.on_job_start = [&gate] { gate.wait_at_gate(); };
  DiagnosisService service(config);

  Query query;
  query.scenario = "sdn1";
  const SubmitOutcome s = service.submit(query);
  ASSERT_TRUE(s.ok());
  gate.await_arrivals(1);

  obs::Gauge& stuck = registry.gauge("dp.service.worker.stuck");
  bool flagged = false;
  for (int i = 0; i < 500 && !flagged; ++i) {
    flagged = stuck.value() >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(flagged) << "watchdog never flagged the pinned worker";

  gate.release();
  EXPECT_EQ(wait_done(service, s).state, QueryState::kDone);
  // Once the job completes the next tick clears the flag.
  bool cleared = false;
  for (int i = 0; i < 500 && !cleared; ++i) {
    cleared = stuck.value() == 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(cleared) << "stuck gauge must drop once the worker returns";
}

TEST(Service, CompletedQueriesCarryAnExplainProfile) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query query;
  query.scenario = "sdn1";
  query.trace_id = 0xabc123;
  const QueryStatus status = wait_done(service, service.submit(query));
  ASSERT_EQ(status.state, QueryState::kDone);
  ASSERT_FALSE(status.result.profile_json.empty());

  std::string error;
  const auto profile = obs::Json::parse(status.result.profile_json, error);
  ASSERT_TRUE(profile.has_value()) << error << " in "
                                   << status.result.profile_json;
  EXPECT_EQ(profile->get_string("trace_id"), "abc123");
  EXPECT_FALSE(profile->get_bool("warm_hit")) << "first query replays cold";
  EXPECT_GE(profile->get_number("rounds"), 1);
  EXPECT_GT(profile->get_number("bad_tree_size"), 0);

  // The accounting invariant --explain relies on: the named phases plus the
  // other_us remainder sum *exactly* to total_us.
  const obs::Json* phases = profile->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->kind, obs::Json::Kind::kObject);
  double phase_sum = 0;
  for (const auto& [name, value] : phases->object) {
    ASSERT_EQ(value.kind, obs::Json::Kind::kNumber) << name;
    EXPECT_GE(value.number, 0) << name;
    phase_sum += value.number;
  }
  EXPECT_NE(phases->find("replay_us"), nullptr);
  EXPECT_NE(phases->find("find_seed_us"), nullptr);
  EXPECT_NE(phases->find("divergence_us"), nullptr);
  EXPECT_DOUBLE_EQ(phase_sum, profile->get_number("total_us"));
  EXPECT_GT(profile->get_number("total_us"), 0);

  // A cache hit serves the stored profile verbatim (it describes the run
  // that produced the cached answer, not the hit).
  const QueryStatus again = wait_done(service, service.submit(query));
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.result.profile_json, status.result.profile_json);

  // A distinct query on the warm session reports warm_hit.
  Query warm = query;
  warm.minimize = true;
  const QueryStatus warmed = wait_done(service, service.submit(warm));
  std::string warm_error;
  const auto warm_profile =
      obs::Json::parse(warmed.result.profile_json, warm_error);
  ASSERT_TRUE(warm_profile.has_value()) << warm_error;
  EXPECT_TRUE(warm_profile->get_bool("warm_hit"));
}

// ------------------------------------------------------- concurrency --
// The TSan targets: everything below runs many client threads against one
// service instance.

TEST(ServiceConcurrency, MixedDuplicateAndDistinctQueriesMatchTheCli) {
  // Four distinct queries across two scenarios; every thread submits all of
  // them several times in a scrambled order.
  struct Case {
    Query query;
    CliAnswer expected;
  };
  std::vector<Case> cases(4);
  cases[0].query.scenario = "sdn1";
  cases[0].expected = run_cli({"--scenario", "sdn1"});
  cases[1].query.scenario = "sdn1";
  cases[1].query.minimize = true;
  cases[1].expected = run_cli({"--scenario", "sdn1", "--minimize"});
  cases[2].query.scenario = "sdn2";
  cases[2].expected = run_cli({"--scenario", "sdn2"});
  cases[3].query.scenario = "sdn2";
  cases[3].query.auto_reference = true;
  cases[3].expected = run_cli({"--scenario", "sdn2", "--auto-reference"});

  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 4;
  config.queue_capacity = 256;
  config.metrics = &registry;
  DiagnosisService service(config);

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (std::size_t i = 0; i < cases.size(); ++i) {
          const Case& c = cases[(i + t + round) % cases.size()];
          const SubmitOutcome s = service.submit(c.query);
          if (!s.ok()) {
            ++mismatches;
            continue;
          }
          const auto status = service.wait(s.id);
          if (!status || status->state != QueryState::kDone ||
              status->result.out != c.expected.out ||
              status->result.exit_code != c.expected.exit_code) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Single-flight + cache: however the 96 submissions interleaved, each
  // distinct query ran exactly once.
  EXPECT_EQ(registry.counter("dp.service.runs").value(), cases.size());
  EXPECT_EQ(registry.counter("dp.service.submitted").value(),
            static_cast<std::uint64_t>(kThreads * kRoundsPerThread) *
                cases.size());
  const std::uint64_t hits = registry.counter("dp.service.cache.hits").value();
  const std::uint64_t coalesced =
      registry.counter("dp.service.cache.coalesced").value();
  EXPECT_EQ(hits + coalesced + cases.size(),
            static_cast<std::uint64_t>(kThreads * kRoundsPerThread) *
                cases.size());
}

TEST(ServiceConcurrency, ParallelProbesAndQueriesStayConsistent) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 4;
  config.metrics = &registry;
  DiagnosisService service(config);

  // A base tuple present in sdn1's log and one that is not.
  const std::string present = "policyRoute(@ctl, \"sw2\", 100, 4.3.2.0/24, \"sw6\")";
  const std::string absent = "policyRoute(@ctl, \"sw2\", 100, 9.9.9.0/24, \"sw6\")";

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        if (t % 2 == 0) {
          Query query;
          query.scenario = "sdn1";
          const SubmitOutcome s = service.submit(query);
          if (!s.ok() || !service.wait(s.id)) ++failures;
        } else {
          bool live = false;
          const SubmitOutcome s =
              service.probe("sdn1", i % 2 == 0 ? present : absent, live);
          if (!s.ok() || live != (i % 2 == 0)) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServiceConcurrency, ShutdownRacesWithSubmittersSafely) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 2;
  config.metrics = &registry;
  auto service = std::make_unique<DiagnosisService>(config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      Query query;
      query.scenario = "sdn3";
      while (!stop.load(std::memory_order_relaxed)) {
        const SubmitOutcome s = service->submit(query);
        if (!s.ok()) break;  // shutdown closed admissions: expected
        if (!service->wait(s.id)) break;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service->shutdown(/*drain=*/true);
  stop.store(true);
  for (auto& thread : submitters) thread.join();
  // Drained shutdown: everything admitted also completed (or was cancelled).
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.cancelled + stats.shed);
}

// ----------------------------------------------------------- sharding --
// The same serving invariants, with the service split into independent
// shards: answers stay byte-identical, single-flight stays per-key (the
// cache stripes are shared across shards), tickets route by the shard index
// in their id, and the warm-byte budget rebalances across shards.

TEST(ShardedService, AnswersAreByteIdenticalAcrossShards) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.shards = 4;
  config.workers = 2;
  config.metrics = &registry;
  DiagnosisService service(config);
  ASSERT_EQ(service.shard_count(), 4u);

  for (const std::string& scenario : {"sdn1", "sdn2", "sdn3", "sdn4"}) {
    const CliAnswer expected = run_cli({"--scenario", scenario});
    Query query;
    query.scenario = scenario;
    const QueryStatus status = wait_done(service, service.submit(query));
    EXPECT_EQ(status.state, QueryState::kDone);
    EXPECT_EQ(status.result.out, expected.out) << scenario;
    EXPECT_EQ(status.result.exit_code, expected.exit_code) << scenario;
  }
}

TEST(ShardedService, ExactlyOneRunPerDistinctQueryAcrossShards) {
  struct Case {
    Query query;
    CliAnswer expected;
  };
  std::vector<Case> cases(4);
  cases[0].query.scenario = "sdn1";
  cases[0].expected = run_cli({"--scenario", "sdn1"});
  cases[1].query.scenario = "sdn2";
  cases[1].expected = run_cli({"--scenario", "sdn2"});
  cases[2].query.scenario = "sdn3";
  cases[2].expected = run_cli({"--scenario", "sdn3"});
  cases[3].query.scenario = "sdn4";
  cases[3].query.minimize = true;
  cases[3].expected = run_cli({"--scenario", "sdn4", "--minimize"});

  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.shards = 4;
  config.workers = 2;
  config.queue_capacity = 256;
  config.metrics = &registry;
  DiagnosisService service(config);

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (std::size_t i = 0; i < cases.size(); ++i) {
          const Case& c = cases[(i + t + round) % cases.size()];
          const SubmitOutcome s = service.submit(c.query);
          if (!s.ok()) {
            ++mismatches;
            continue;
          }
          const auto status = service.wait(s.id);
          if (!status || status->state != QueryState::kDone ||
              status->result.out != c.expected.out ||
              status->result.exit_code != c.expected.exit_code) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Sharding must not loosen the single-flight guarantee: one underlying
  // run per distinct query, wherever its shard and cache stripe landed.
  EXPECT_EQ(registry.counter("dp.service.runs").value(), cases.size());
  const std::uint64_t hits = registry.counter("dp.service.cache.hits").value();
  const std::uint64_t coalesced =
      registry.counter("dp.service.cache.coalesced").value();
  EXPECT_EQ(hits + coalesced + cases.size(),
            static_cast<std::uint64_t>(kThreads * kRoundsPerThread) *
                cases.size());
}

TEST(ShardedService, TicketsRouteByShardAndStatsAggregate) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.shards = 4;
  config.metrics = &registry;
  DiagnosisService service(config);

  Query query;
  query.scenario = "sdn1";
  const SubmitOutcome s = service.submit(query);
  ASSERT_TRUE(s.ok());
  // The ticket id carries its shard in the high bits and routes back to it.
  EXPECT_EQ(s.id >> 48, service.shard_of_key("sdn1"));
  EXPECT_TRUE(service.poll(s.id).has_value());
  // An id minted for a shard that does not exist is unknown, not a crash.
  EXPECT_FALSE(service.poll((33ull << 48) | 1).has_value());
  EXPECT_FALSE(service.wait((7ull << 48) | 999).has_value());
  EXPECT_FALSE(service.cancel((7ull << 48) | 999));
  EXPECT_EQ(wait_done(service, s).state, QueryState::kDone);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.shard_queue_depths.size(), 4u);
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);

  // Every shard publishes its queue-depth gauge at construction.
  const std::string metrics_json = registry.to_json();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(metrics_json.find("dp.service.shard." + std::to_string(i) +
                                ".queue_depth"),
              std::string::npos);
  }
}

TEST(ShardedService, OneShardSheddingLeavesOthersServing) {
  WorkerGate gate;
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.shards = 4;
  config.workers = 1;
  config.queue_capacity = 1;  // per shard
  config.metrics = &registry;
  config.on_job_start = [&gate] { gate.wait_at_gate(); };
  DiagnosisService service(config);

  // Two scenarios on different shards: overloading one lane must not
  // reject work routed to another.
  const std::vector<std::string> scenarios = {"sdn1", "sdn2", "sdn3", "sdn4"};
  std::string busy = scenarios[0];
  std::string other;
  for (const std::string& candidate : scenarios) {
    if (service.shard_of_key(candidate) != service.shard_of_key(busy)) {
      other = candidate;
      break;
    }
  }
  ASSERT_FALSE(other.empty()) << "all four scenarios hashed to one shard";

  Query a, b, c, d;
  a.scenario = b.scenario = c.scenario = busy;
  b.minimize = true;
  c.auto_reference = true;
  d.scenario = other;

  const SubmitOutcome sa = service.submit(a);
  ASSERT_TRUE(sa.ok());
  gate.await_arrivals(1);  // busy shard's one worker holds A
  const SubmitOutcome sb = service.submit(b);
  ASSERT_TRUE(sb.ok());  // occupies the busy shard's single queue slot
  const SubmitOutcome sc = service.submit(c);
  EXPECT_TRUE(sc.shed) << "third distinct query on the busy shard must shed";
  const SubmitOutcome sd = service.submit(d);
  EXPECT_TRUE(sd.ok()) << "the other shard's queue is empty: " << sd.error;

  gate.release();
  EXPECT_EQ(wait_done(service, sa).state, QueryState::kDone);
  EXPECT_EQ(wait_done(service, sb).state, QueryState::kDone);
  EXPECT_EQ(wait_done(service, sd).state, QueryState::kDone);
  EXPECT_EQ(registry.counter("dp.service.shed").value(), 1u);
}

TEST(WarmBudgetLedger, TracksShareAndGlobalUsage) {
  WarmBudgetLedger ledger(/*total_bytes=*/100, /*shards=*/2);
  EXPECT_EQ(ledger.total(), 100u);
  EXPECT_EQ(ledger.share(), 50u);
  EXPECT_FALSE(ledger.over_budget());

  // A hot shard past its share does not trip the budget while the global
  // total holds -- that headroom is the cross-shard rebalance.
  ledger.publish(0, 80);
  EXPECT_EQ(ledger.usage(0), 80u);
  EXPECT_FALSE(ledger.over_budget());

  ledger.publish(1, 30);
  EXPECT_EQ(ledger.global_usage(), 110u);
  EXPECT_TRUE(ledger.over_budget());

  ledger.publish(0, 40);
  EXPECT_FALSE(ledger.over_budget());

  WarmBudgetLedger unlimited(/*total_bytes=*/0, /*shards=*/4);
  unlimited.publish(2, 1ull << 40);
  EXPECT_FALSE(unlimited.over_budget());
}

TEST(WarmBudgetLedger, HotShardCoolsOnlyPastGlobalBudgetAndOwnShare) {
  obs::MetricsRegistry registry;
  // Two shard managers on one 1-byte global budget: any warm session
  // overruns it, so each shard cools down to its spared MRU session.
  auto ledger = std::make_shared<WarmBudgetLedger>(/*total_bytes=*/1,
                                                   /*shards=*/2);
  SessionManager hot(/*max_warm=*/8, ledger, /*shard_index=*/0,
                     ReplayOptions{}, registry);
  SessionManager idle(/*max_warm=*/8, ledger, /*shard_index=*/1,
                      ReplayOptions{}, registry);

  std::string error;
  std::shared_ptr<WarmSession> a = hot.get_scenario("sdn1", error);
  ASSERT_NE(a, nullptr) << error;
  std::shared_ptr<WarmSession> b = hot.get_scenario("sdn2", error);
  ASSERT_NE(b, nullptr) << error;
  std::shared_ptr<WarmSession> c = idle.get_scenario("sdn3", error);
  ASSERT_NE(c, nullptr) << error;
  for (const auto& session : {a, b, c}) {
    std::lock_guard<std::mutex> lock(session->mutex());
    session->ensure_warm();
  }

  hot.enforce_budget();
  idle.enforce_budget();
  {
    std::lock_guard<std::mutex> lock(a->mutex());
    EXPECT_FALSE(a->is_warm()) << "the hot shard's LRU session must cool";
  }
  for (const auto& session : {b, c}) {
    std::lock_guard<std::mutex> lock(session->mutex());
    EXPECT_TRUE(session->is_warm()) << "each shard spares its MRU session";
  }
  // The resident-bytes gauge reflects the *global* ledger: both shards'
  // surviving sessions.
  EXPECT_EQ(registry.gauge("dp.service.session.resident_bytes").value(),
            static_cast<std::int64_t>(hot.warm_bytes() + idle.warm_bytes()));

  // With a generous global budget the hot shard may keep everything, even
  // though two warm graphs exceed total/shards: the idle shard's unused
  // share is borrowed, not fenced off.
  obs::MetricsRegistry registry2;
  auto roomy = std::make_shared<WarmBudgetLedger>(/*total_bytes=*/1ull << 30,
                                                  /*shards=*/2);
  SessionManager borrow(/*max_warm=*/8, roomy, /*shard_index=*/0,
                        ReplayOptions{}, registry2);
  std::shared_ptr<WarmSession> d = borrow.get_scenario("sdn1", error);
  ASSERT_NE(d, nullptr) << error;
  std::shared_ptr<WarmSession> e = borrow.get_scenario("sdn2", error);
  ASSERT_NE(e, nullptr) << error;
  for (const auto& session : {d, e}) {
    std::lock_guard<std::mutex> lock(session->mutex());
    session->ensure_warm();
  }
  borrow.enforce_budget();
  for (const auto& session : {d, e}) {
    std::lock_guard<std::mutex> lock(session->mutex());
    EXPECT_TRUE(session->is_warm());
  }
}

TEST(ShardedServiceConcurrency, ShutdownRacesWithSubmittersSafely) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.shards = 4;
  config.workers = 1;
  config.metrics = &registry;
  auto service = std::make_unique<DiagnosisService>(config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      Query query;
      query.scenario = "sdn" + std::to_string(1 + (t % 4));
      while (!stop.load(std::memory_order_relaxed)) {
        const SubmitOutcome s = service->submit(query);
        if (!s.ok()) break;  // shutdown closed admissions: expected
        if (!service->wait(s.id)) break;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service->shutdown(/*drain=*/true);
  stop.store(true);
  for (auto& thread : submitters) thread.join();
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.cancelled + stats.shed);
}

}  // namespace
}  // namespace dp::service
