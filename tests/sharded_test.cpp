// Tests for the distributed (sharded) provenance store of paper section
// 4.8: per-node shards, stub resolution, on-demand materialization, and
// equivalence with the monolithic recorder.
#include <gtest/gtest.h>

#include "diffprov/treediff.h"
#include "provenance/recorder.h"
#include "provenance/sharded.h"
#include "runtime/engine.h"
#include "sdn/program.h"
#include "sdn/scenario.h"

namespace dp {
namespace {

/// Runs an SDN scenario with BOTH recorders attached and returns them.
struct DualRun {
  ProvenanceRecorder monolithic;
  ShardedProvenance sharded;
};

void run_scenario(const sdn::Scenario& s, DualRun& out) {
  Engine engine(sdn::make_program());
  engine.add_observer(&out.monolithic);
  engine.add_observer(&out.sharded);
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{}) {
    engine.add_link(a, b, 10);
  }
  for (const LogRecord& r : s.log.records()) {
    if (r.op == LogRecord::Op::kInsert) {
      engine.schedule_insert(r.tuple(), r.time);
    } else {
      engine.schedule_delete(r.tuple(), r.time);
    }
  }
  engine.run();
}

TEST(Sharded, EveryNodeStoresOnlyItsLocalTuples) {
  DualRun run;
  run_scenario(sdn::sdn1(), run);
  EXPECT_GT(run.sharded.shard_count(), 5u);  // ctl + switches + hosts
  for (const auto& [node, graph] :
       std::map<NodeName, std::size_t>(run.sharded.shard_sizes())) {
    const ProvenanceGraph* shard = run.sharded.shard(node);
    ASSERT_NE(shard, nullptr);
    // Every locally *rooted* tuple (EXIST with a full chain) is local;
    // foreign tuples may appear only as stubs referenced by local derives.
    shard->for_each_tuple([&](const Tuple& t, const auto& exists) {
      if (t.location() == node) return;
      // Stubs only: each must be referenced by some derive in this shard.
      EXPECT_FALSE(exists.empty());
    });
  }
}

TEST(Sharded, ProjectionMatchesTheMonolithicTree) {
  const sdn::Scenario s = sdn::sdn1();
  DualRun run;
  run_scenario(s, run);
  for (const Tuple& event : {s.good_event, s.bad_event}) {
    const auto mono_root =
        run.monolithic.graph().latest_exist_before(event, kTimeInfinity);
    ASSERT_TRUE(mono_root.has_value());
    const ProvTree mono =
        ProvTree::project(run.monolithic.graph(), *mono_root);
    const auto dist = run.sharded.project(event);
    ASSERT_TRUE(dist.has_value());
    EXPECT_EQ(dist->size(), mono.size());
    // Structurally identical: zero plain-diff (labels mask timestamps, but
    // sizes matching plus zero diff pins the multiset of vertices).
    EXPECT_EQ(plain_tree_diff(mono, *dist).diff_size(), 0u);
    // And the vertex sequence matches pre-order, node by node.
    for (std::size_t i = 0; i < mono.size(); ++i) {
      const auto index = static_cast<ProvTree::NodeIndex>(i);
      EXPECT_EQ(mono.vertex_of(index).kind, dist->vertex_of(index).kind);
      EXPECT_EQ(mono.vertex_of(index).tuple(), dist->vertex_of(index).tuple());
    }
  }
}

TEST(Sharded, OnDemandMaterializationTouchesOnlyRelevantShards) {
  const sdn::Scenario s = sdn::sdn1();
  DualRun run;
  run_scenario(s, run);
  const auto tree = run.sharded.project(s.good_event);
  ASSERT_TRUE(tree.has_value());
  const auto stats = run.sharded.last_query_stats();
  // The good packet's path is sw1 -> sw2 -> sw6 -> w1 (+ctl for config):
  // far fewer shards than exist in total.
  EXPECT_LE(stats.shards_touched, 6u);
  EXPECT_LT(stats.shards_touched, run.sharded.shard_count());
  // Vertices materialized == the tree's vertices, not the whole graph.
  EXPECT_EQ(stats.vertices_visited, tree->size());
  std::size_t total = 0;
  for (const auto& [node, size] : run.sharded.shard_sizes()) total += size;
  EXPECT_LT(stats.vertices_visited, total / 2);
  // Crossing counts are non-trivial: config flows ctl -> switches, packets
  // hop between switches.
  EXPECT_GT(stats.remote_fetches, 3u);
}

TEST(Sharded, MissingEventsProjectToNothing) {
  DualRun run;
  run_scenario(sdn::sdn1(), run);
  EXPECT_FALSE(run.sharded
                   .project(Tuple("delivered", {Value("w9"), Value(77),
                                                Value(Ipv4(1, 2, 3, 4)),
                                                Value(Ipv4(5, 6, 7, 8))}))
                   .has_value());
  EXPECT_FALSE(run.sharded
                   .project(Tuple("delivered", {Value("nowhere"), Value(1),
                                                Value(Ipv4(1, 2, 3, 4)),
                                                Value(Ipv4(5, 6, 7, 8))}))
                   .has_value());
}

TEST(Sharded, TemporalHistorySurvivesSharding) {
  // SDN3's reference lies in the past; the sharded projection must resolve
  // the expired rule's interval exactly like the monolithic one.
  const sdn::Scenario s = sdn::sdn3();
  DualRun run;
  run_scenario(s, run);
  const auto good = run.sharded.project(s.good_event);
  const auto bad = run.sharded.project(s.bad_event);
  ASSERT_TRUE(good && bad);
  EXPECT_GT(good->size(), 50u);
  // The good tree contains the multicast policy that has since expired: its
  // EXIST interval must be closed.
  bool found_expired = false;
  good->visit([&](ProvTree::NodeIndex i) {
    const Vertex& v = good->vertex_of(i);
    if (v.kind == VertexKind::kExist && v.tuple().table() == "policyRoute" &&
        !v.interval.open_ended()) {
      found_expired = true;
    }
  });
  EXPECT_TRUE(found_expired);
}

}  // namespace
}  // namespace dp
