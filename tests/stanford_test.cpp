// Tests for the section 6.7 complex-network substrate: black-box simulator,
// external-specification recorder (mode 3), and end-to-end diagnosis under
// 20 extra faults and background traffic.
#include <gtest/gtest.h>

#include "diffprov/diffprov.h"
#include "diffprov/treediff.h"
#include "sdn/stanford.h"

namespace dp::sdn {
namespace {

StanfordConfig small_config() {
  StanfordConfig config;
  config.filler_entries_per_router = 40;
  config.acl_rules = 24;
  config.background_packets = 200;
  return config;
}

TEST(Stanford, BuildsScaledNetwork) {
  const StanfordNetwork net = build_stanford(small_config());
  EXPECT_EQ(net.tables.size(), 16u);  // 14 OZ + 2 backbone routers
  EXPECT_GT(net.total_entries, 16u * 40u);
  EXPECT_EQ(net.acl_entries, 24u);
  EXPECT_EQ(net.workload.size(), 202u);  // background + the two flows
  // Workload is sorted by time (the simulator relies on it).
  for (std::size_t i = 1; i < net.workload.size(); ++i) {
    EXPECT_LE(net.workload[i - 1].time, net.workload[i].time);
  }
}

TEST(Stanford, PerRouterPrioritiesAreUnique) {
  const StanfordNetwork net = build_stanford(small_config());
  for (const auto& [node, entries] : net.tables) {
    std::set<int> prios;
    for (const TimedEntry& entry : entries) {
      EXPECT_TRUE(prios.insert(entry.prio).second)
          << node << " has duplicate priority " << entry.prio;
    }
  }
}

TEST(Stanford, BlackBoxRunProducesTheFaultAndTheReference) {
  const StanfordNetwork net = build_stanford(small_config());
  const Program spec = make_stanford_spec();
  StanfordReplayProvider provider(net, spec);
  const BadRun run = provider.replay_bad({});
  EXPECT_GT(provider.last_stats().delivered, 50u);
  EXPECT_GT(provider.last_stats().dropped, 0u);
  // The reference flow reached h2; the diagnosed flow was dropped at oz02.
  EXPECT_TRUE(locate_tree(*run.graph, net.good_event).has_value());
  EXPECT_TRUE(locate_tree(*run.graph, net.bad_event).has_value());
}

TEST(Stanford, TreesHavePaperLikeSizes) {
  // Paper section 6.7: the trees contain 67 and 75 nodes; the plain diff,
  // 108. Our model sits in the same range, and the diff is comparable to
  // the trees themselves.
  const StanfordNetwork net = build_stanford(small_config());
  const Program spec = make_stanford_spec();
  StanfordReplayProvider provider(net, spec);
  const BadRun run = provider.replay_bad({});
  const auto good = locate_tree(*run.graph, net.good_event);
  const auto bad = locate_tree(*run.graph, net.bad_event);
  ASSERT_TRUE(good && bad);
  EXPECT_GT(good->size(), 15u);
  EXPECT_LT(good->size(), 200u);
  EXPECT_GT(bad->size(), 15u);
  const TreeDiffStats diff = plain_tree_diff(*good, *bad);
  EXPECT_GT(diff.diff_size(), good->size() / 2);
}

TEST(Stanford, DiffProvPinpointsTheDropRuleDespiteNoise) {
  const StanfordNetwork net = build_stanford(small_config());
  const Program spec = make_stanford_spec();
  StanfordReplayProvider provider(net, spec);
  const BadRun initial = provider.replay_bad({});
  const auto good = locate_tree(*initial.graph, net.good_event);
  ASSERT_TRUE(good.has_value());

  DiffProv diffprov(spec, provider);
  const DiffProvResult result = diffprov.diagnose(*good, net.bad_event);
  ASSERT_EQ(result.status, DiffProvStatus::kSuccess) << result.to_string();
  ASSERT_EQ(result.changes.size(), 1u) << result.to_string();
  const ChangeRecord& change = result.changes[0];
  ASSERT_TRUE(change.before.has_value());
  EXPECT_FALSE(change.after.has_value());  // the drop rule is removed
  EXPECT_EQ(*change.before, net.fault_entry)
      << "expected the misconfigured drop entry, got "
      << change.before->to_string();
}

TEST(Stanford, ExtraFaultsDoNotChangeTheDiagnosis) {
  // Same diagnosis with zero extra faults: identical root cause (the 20
  // injected faults are causally unrelated noise).
  StanfordConfig with = small_config();
  StanfordConfig without = small_config();
  without.extra_faults = 0;
  const Program spec = make_stanford_spec();
  std::vector<Tuple> causes;
  for (const StanfordConfig& config : {with, without}) {
    const StanfordNetwork net = build_stanford(config);
    StanfordReplayProvider provider(net, spec);
    const BadRun initial = provider.replay_bad({});
    const auto good = locate_tree(*initial.graph, net.good_event);
    ASSERT_TRUE(good.has_value());
    DiffProv diffprov(spec, provider);
    const DiffProvResult result = diffprov.diagnose(*good, net.bad_event);
    ASSERT_TRUE(result.ok()) << result.to_string();
    ASSERT_EQ(result.changes.size(), 1u);
    causes.push_back(*result.changes[0].before);
  }
  EXPECT_EQ(causes[0], causes[1]);
}

TEST(Stanford, DeltaApplicationEditsValidityIntervals) {
  const StanfordNetwork net = build_stanford(small_config());
  const Program spec = make_stanford_spec();
  StanfordReplayProvider provider(net, spec);
  // Delete the fault entry just before the bad packet: the drop disappears.
  Delta delta;
  const LogicalTime bad_time = net.workload.back().time;
  delta.push_back({DeltaOp::Kind::kDelete, net.fault_entry, bad_time - 1});
  const BadRun run = provider.replay_bad(delta);
  EXPECT_FALSE(locate_tree(*run.graph, net.bad_event).has_value());
  // ... and the packet is now delivered to h2.
  Tuple fixed("delivered", {Value("h2"), net.bad_event.at(1),
                            net.bad_event.at(2), net.bad_event.at(3)});
  EXPECT_TRUE(locate_tree(*run.graph, fixed).has_value());
  // Temporal correctness: the reference packet (earlier) must still have
  // been dropped... no -- the reference was delivered all along; but
  // background traffic to 172.20.10.32/27 before bad_time-1 still hits the
  // drop rule.
  EXPECT_TRUE(run.state->existed_at(net.fault_entry, bad_time - 2));
  EXPECT_FALSE(run.state->existed_at(net.fault_entry, bad_time));
}

TEST(Stanford, DeterministicAcrossRuns) {
  const StanfordNetwork a = build_stanford(small_config());
  const StanfordNetwork b = build_stanford(small_config());
  ASSERT_EQ(a.workload.size(), b.workload.size());
  for (std::size_t i = 0; i < a.workload.size(); ++i) {
    EXPECT_EQ(a.workload[i].src, b.workload[i].src);
    EXPECT_EQ(a.workload[i].dst, b.workload[i].dst);
  }
  EXPECT_EQ(a.total_entries, b.total_entries);
}

}  // namespace
}  // namespace dp::sdn
