// Tests for the interned tuple store (src/store): hash-consing edge cases,
// cross-thread interning (run under TSan in CI), and randomized round-trip
// properties per value type.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "ndlog/table.h"
#include "ndlog/tuple.h"
#include "ndlog/value.h"
#include "store/batch.h"
#include "store/store.h"
#include "util/rng.h"

namespace dp {
namespace {

Tuple flow(int sw, int dst) {
  return Tuple("flow", {Value("sw" + std::to_string(sw)), Value(dst)});
}

// ------------------------------------------------------ basic hash-consing --

TEST(TupleStore, EqualTuplesGetEqualRefsDistinctTuplesDistinctRefs) {
  TupleStore store;
  const TupleRef a = store.intern(flow(1, 7));
  const TupleRef b = store.intern(flow(1, 8));
  const TupleRef a2 = store.intern(flow(1, 7));
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.size(), 2u);
}

TEST(TupleStore, ReInterningStoresNoSecondMaterializedCopy) {
  // The exist-index duplicate-storage fix depends on this: the store holds
  // exactly one record and one canonical Tuple per distinct tuple, however
  // many layers re-intern or re-resolve it.
  TupleStore store;
  const TupleRef ref = store.intern(flow(2, 9));
  const Tuple* canonical = &store.resolve(ref);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(store.intern(flow(2, 9)), ref);
    // Same address, not merely an equal tuple: resolve() caches one copy.
    EXPECT_EQ(&store.resolve(ref), canonical);
  }
  EXPECT_EQ(store.size(), 1u);
  const TupleStore::Stats stats = store.stats();
  EXPECT_EQ(stats.tuples, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 100u);
  EXPECT_EQ(stats.resolved, 1u);
}

TEST(TupleStore, FindNeverInserts) {
  TupleStore store;
  EXPECT_EQ(store.find(flow(3, 1)), kNoTupleRef);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.values().size(), 0u);
  const TupleRef ref = store.intern(flow(3, 1));
  EXPECT_EQ(store.find(flow(3, 1)), ref);
  EXPECT_EQ(store.find(flow(3, 2)), kNoTupleRef);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TupleStore, ColumnarAccessorsMatchTheMaterializedTuple) {
  TupleStore store;
  const Tuple t("route", {Value("sw4"), Value(*Ipv4::parse("10.0.0.1")),
                          Value(2), Value(0.5)});
  const TupleRef ref = store.intern(t);
  EXPECT_EQ(store.table_name(ref), "route");
  ASSERT_EQ(store.arity(ref), t.arity());
  for (std::size_t i = 0; i < t.arity(); ++i) {
    EXPECT_EQ(store.value(ref, i), t.at(i)) << "field " << i;
  }
  EXPECT_EQ(store.location(ref), "sw4");
  EXPECT_EQ(store.to_string(ref), t.to_string());
}

TEST(TupleStore, LessMatchesTupleOrdering) {
  TupleStore store;
  const std::vector<Tuple> tuples = {
      flow(1, 1), flow(1, 2), flow(2, 1),
      Tuple("arp", {Value("sw1")}),
      Tuple("flow", {Value("sw1")}),  // prefix of flow(1, *)
  };
  for (const Tuple& a : tuples) {
    for (const Tuple& b : tuples) {
      EXPECT_EQ(store.less(store.intern(a), store.intern(b)), a < b)
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

// --------------------------------------------------- forced hash collisions --

std::uint64_t colliding_value_hash(const Value&) { return 42; }
std::uint64_t colliding_tuple_hash(const Tuple&) { return 7; }

TEST(TupleStore, ValueHashCollisionsStillDistinguishValues) {
  // Every value lands in one bucket chain; correctness must come from the
  // structural equality check, not the hash.
  TupleStore store(&colliding_value_hash, nullptr);
  const std::vector<Value> values = {
      Value(1), Value(2), Value(1.0), Value("1"), Value(""),
      Value(*Ipv4::parse("10.0.0.1")),
      Value(IpPrefix(*Ipv4::parse("10.0.0.0"), 8))};
  std::set<ValueRef> refs;
  for (const Value& v : values) {
    refs.insert(store.values().intern(v));
  }
  EXPECT_EQ(refs.size(), values.size());
  for (const Value& v : values) {
    const ValueRef ref = store.values().find(v);
    ASSERT_NE(ref, kNoValueRef);
    EXPECT_EQ(store.values().value(ref), v);
    EXPECT_EQ(store.values().intern(v), ref);
  }
}

TEST(TupleStore, TupleHashCollisionsStillDistinguishTuples) {
  TupleStore store(&colliding_value_hash, &colliding_tuple_hash);
  std::set<TupleRef> refs;
  std::vector<Tuple> tuples;
  for (int sw = 0; sw < 8; ++sw) {
    for (int dst = 0; dst < 8; ++dst) {
      tuples.push_back(flow(sw, dst));
      refs.insert(store.intern(tuples.back()));
    }
  }
  EXPECT_EQ(refs.size(), tuples.size());
  for (const Tuple& t : tuples) {
    const TupleRef ref = store.find(t);
    ASSERT_NE(ref, kNoTupleRef);
    EXPECT_EQ(store.resolve(ref), t);
  }
}

// ------------------------------------------------------- batched interning --

TEST(TupleStore, InternBatchMatchesPerTupleInternAndDedupsWithinTheBatch) {
  TupleStore store;
  store.intern(flow(0, 0));  // pre-existing hit for the batch below

  std::vector<Tuple> tuples;
  std::vector<const Tuple*> ptrs;
  for (int i = 0; i < 10; ++i) tuples.push_back(flow(i / 4, i % 4));
  tuples.push_back(flow(0, 0));  // duplicate of the pre-interned tuple
  tuples.push_back(flow(1, 1));  // intra-batch duplicate of index 5
  for (const Tuple& t : tuples) ptrs.push_back(&t);

  std::vector<TupleRef> refs;
  store.intern_batch(ptrs.data(), ptrs.size(), refs);
  ASSERT_EQ(refs.size(), tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(refs[i], store.intern(tuples[i])) << "tuple " << i;
  }
  EXPECT_EQ(refs[10], refs[0]);
  EXPECT_EQ(refs[11], refs[5]);
  EXPECT_EQ(store.size(), 10u);
}

TEST(TupleStore, InternBatchCountsHitsAndMissesLikeTheScalarPath) {
  TupleStore store;
  std::vector<Tuple> tuples;
  std::vector<const Tuple*> ptrs;
  for (int i = 0; i < 6; ++i) tuples.push_back(flow(9, i));
  tuples.push_back(flow(9, 0));  // intra-batch duplicate -> a hit
  for (const Tuple& t : tuples) ptrs.push_back(&t);
  std::vector<TupleRef> refs;
  store.intern_batch(ptrs.data(), ptrs.size(), refs);
  const TupleStore::Stats stats = store.stats();
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.hits, 1u);

  // A pure-hit batch touches only the shared lock and counts all hits.
  store.intern_batch(ptrs.data(), ptrs.size(), refs);
  EXPECT_EQ(store.stats().hits, 1u + tuples.size());
  EXPECT_EQ(store.stats().misses, 6u);
}

TEST(TupleStore, InternBatchHandlesEmptyAndCollidingInputs) {
  TupleStore store(&colliding_value_hash, &colliding_tuple_hash);
  std::vector<TupleRef> refs = {12345};
  store.intern_batch(nullptr, 0, refs);
  EXPECT_TRUE(refs.empty());

  std::vector<Tuple> tuples;
  std::vector<const Tuple*> ptrs;
  for (int i = 0; i < 16; ++i) tuples.push_back(flow(i, i));
  for (const Tuple& t : tuples) ptrs.push_back(&t);
  store.intern_batch(ptrs.data(), ptrs.size(), refs);
  std::set<TupleRef> distinct(refs.begin(), refs.end());
  EXPECT_EQ(distinct.size(), tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(store.resolve(refs[i]), tuples[i]);
  }
}

// -------------------------------------------------- cross-thread interning --

TEST(TupleStore, ConcurrentInternBatchesAgreeOnRefs) {
  // Same invariant as the scalar test below, but through intern_batch with
  // heavily overlapping batches; run under TSan in CI. The unique-lock pass
  // must re-probe so two racing batches never insert the same tuple twice.
  TupleStore store;
  constexpr int kThreads = 8;
  constexpr int kUniverse = 48;
  std::vector<std::vector<TupleRef>> seen(kThreads,
                                          std::vector<TupleRef>(kUniverse));
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int worker = 0; worker < kThreads; ++worker) {
    threads.emplace_back([&, worker] {
      start.fetch_add(1);
      while (start.load() < kThreads) {}  // rough start barrier
      Rng rng{static_cast<std::uint64_t>(worker) + 77};
      for (int iter = 0; iter < 300; ++iter) {
        std::vector<Tuple> tuples;
        std::vector<int> ids;
        const std::size_t n = 1 + rng.next_below(12);
        for (std::size_t i = 0; i < n; ++i) {
          ids.push_back(static_cast<int>(rng.next_below(kUniverse)));
          tuples.push_back(flow(ids.back() / 8, ids.back() % 8));
        }
        std::vector<const Tuple*> ptrs;
        for (const Tuple& t : tuples) ptrs.push_back(&t);
        std::vector<TupleRef> refs;
        store.intern_batch(ptrs.data(), ptrs.size(), refs);
        for (std::size_t i = 0; i < n; ++i) {
          seen[worker][static_cast<std::size_t>(ids[i])] = refs[i];
          EXPECT_EQ(store.resolve(refs[i]), tuples[i]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kUniverse));
  for (int id = 0; id < kUniverse; ++id) {
    const TupleRef expected = store.find(flow(id / 8, id % 8));
    ASSERT_NE(expected, kNoTupleRef);
    for (int worker = 0; worker < kThreads; ++worker) {
      EXPECT_EQ(seen[worker][id], expected)
          << "worker " << worker << ", tuple " << id;
    }
  }
}

TEST(TupleStore, ConcurrentInterningAgreesOnRefs) {
  // Many threads intern an overlapping tuple universe while also resolving
  // and reading columns. Run under TSan in CI; the invariant checked here is
  // that every thread observes the same ref for the same tuple.
  TupleStore store;
  constexpr int kThreads = 8;
  constexpr int kUniverse = 64;
  std::vector<std::vector<TupleRef>> seen(kThreads,
                                          std::vector<TupleRef>(kUniverse));
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int worker = 0; worker < kThreads; ++worker) {
    threads.emplace_back([&, worker] {
      start.fetch_add(1);
      while (start.load() < kThreads) {}  // rough start barrier
      Rng rng{static_cast<std::uint64_t>(worker) + 1};
      for (int iter = 0; iter < 2000; ++iter) {
        const int id = static_cast<int>(rng.next_below(kUniverse));
        const Tuple t = flow(id / 8, id % 8);
        const TupleRef ref = store.intern(t);
        seen[worker][id] = ref;
        // Lock-free read paths, racing against concurrent interns.
        EXPECT_EQ(store.resolve(ref), t);
        EXPECT_EQ(store.arity(ref), t.arity());
        EXPECT_EQ(store.table_name(ref), "flow");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kUniverse));
  for (int id = 0; id < kUniverse; ++id) {
    const TupleRef expected = store.find(flow(id / 8, id % 8));
    ASSERT_NE(expected, kNoTupleRef);
    for (int worker = 0; worker < kThreads; ++worker) {
      EXPECT_EQ(seen[worker][id], expected)
          << "worker " << worker << ", tuple " << id;
    }
  }
}

// ------------------------------------- open-addressing join-index probing --

/// Resets the JoinIndex hash override even if the test fails mid-way.
struct JoinIndexHashGuard {
  ~JoinIndexHashGuard() { Table::JoinIndex::set_hash_for_testing(nullptr); }
};

TEST(JoinIndexBatchProbe, ForcedHashCollisionsStillSeparateKeys) {
  // Every key hashes to the same slot, so the whole table becomes one linear
  // probe cluster: correctness must come from the stored-key comparison, and
  // termination from the table never exceeding its load factor.
  JoinIndexHashGuard guard;
  Table::JoinIndex::set_hash_for_testing(
      [](const std::vector<Value>&) -> std::uint64_t { return 7; });

  TableDecl decl;
  decl.name = "flow";
  decl.arity = 3;
  decl.key_columns = {0, 1};
  Table table(decl);
  for (int k = 0; k < 32; ++k) {
    table.insert(Tuple("flow", {Value("n1"), Value(k), Value(k % 4)}), 1);
  }
  const Table::JoinIndex& index = table.index_for({2});
  EXPECT_EQ(index.bucket_count(), 4u);
  for (int v = 0; v < 4; ++v) {
    const std::vector<Value> key = {Value(v)};
    const std::uint64_t hash = Table::JoinIndex::hash_key(key);
    EXPECT_EQ(hash, 7u);
    index.prefetch(hash);  // must be safe on a colliding cluster
    const auto* entries = index.lookup(hash, key);
    ASSERT_NE(entries, nullptr) << "key " << v;
    EXPECT_EQ(entries->size(), 8u);
    for (const Table::JoinIndex::Entry& entry : *entries) {
      EXPECT_EQ(entry.tuple->at(2), Value(v));
    }
  }
  // An absent key walks the full collision cluster and stops at an empty
  // slot instead of looping.
  const std::vector<Value> absent = {Value(99)};
  EXPECT_EQ(index.lookup(Table::JoinIndex::hash_key(absent), absent), nullptr);

  // Deletions shrink bucket entries in place; emptied buckets stay resident
  // (slots are never vacated) and read as no-match.
  for (int k = 0; k < 32; k += 4) {
    ASSERT_TRUE(
        table.remove(Tuple("flow", {Value("n1"), Value(k), Value(0)}), 2));
  }
  const std::vector<Value> zero = {Value(0)};
  EXPECT_EQ(index.lookup(Table::JoinIndex::hash_key(zero), zero), nullptr);
  const std::vector<Value> one = {Value(1)};
  const auto* ones = index.lookup(Table::JoinIndex::hash_key(one), one);
  ASSERT_NE(ones, nullptr);
  EXPECT_EQ(ones->size(), 8u);
}

TEST(JoinIndexBatchProbe, GrowthRehashesWithoutLosingEntries) {
  // No override here: drive the index through several rehash_grow cycles and
  // check every key remains reachable through the open-addressing probe.
  TableDecl decl;
  decl.name = "flow";
  decl.arity = 3;
  decl.key_columns = {0, 1};
  Table table(decl);
  for (int k = 0; k < 500; ++k) {
    table.insert(Tuple("flow", {Value("n1"), Value(k), Value(k)}), 1);
  }
  const Table::JoinIndex& index = table.index_for({2});
  EXPECT_EQ(index.bucket_count(), 500u);
  EXPECT_GE(index.slot_count(), index.bucket_count());
  for (int v = 0; v < 500; ++v) {
    const std::vector<Value> key = {Value(v)};
    const auto* entries = index.lookup(Table::JoinIndex::hash_key(key), key);
    ASSERT_NE(entries, nullptr) << "key " << v;
    ASSERT_EQ(entries->size(), 1u);
    EXPECT_EQ(entries->front().tuple->at(1), Value(v));
  }
}

// ----------------------------------------------- dense batch primitives --

TEST(SelectionVector, FilterCompactsStablyInPlace) {
  store::SelectionVector sel;
  EXPECT_TRUE(sel.empty());
  sel.reset_identity(10);
  EXPECT_EQ(sel.size(), 10u);
  const std::size_t survivors =
      sel.filter([](std::uint32_t i) { return i % 3 == 0; });
  EXPECT_EQ(survivors, 4u);
  ASSERT_EQ(sel.size(), 4u);
  const std::vector<std::uint32_t> expected = {0, 3, 6, 9};
  EXPECT_TRUE(std::equal(sel.begin(), sel.end(), expected.begin(),
                         expected.end()));
  sel.clear();
  sel.push_back(42);
  EXPECT_EQ(sel[0], 42u);
  EXPECT_EQ(sel.filter([](std::uint32_t) { return false; }), 0u);
  EXPECT_TRUE(sel.empty());
}

TEST(ValueMatrix, RowsKeepStrideAcrossReallocationAndSelfCopy) {
  store::ValueMatrix m;
  m.reset(3);
  EXPECT_EQ(m.rows(), 0u);
  const std::size_t first = m.add_row();
  m.row(first)[0] = Value(1);
  m.row(first)[1] = Value("x");
  m.row(first)[2] = Value(2.5);
  // Repeated self-copies force reallocation while the source row lives in
  // the same storage being grown.
  for (int i = 0; i < 200; ++i) {
    const std::size_t r = m.add_row_copy(first);
    EXPECT_EQ(r, static_cast<std::size_t>(i) + 1);
  }
  ASSERT_EQ(m.rows(), 201u);
  EXPECT_EQ(m.stride(), 3u);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(m.at(r, 0), Value(1)) << "row " << r;
    EXPECT_EQ(m.at(r, 1), Value("x")) << "row " << r;
    EXPECT_EQ(m.at(r, 2), Value(2.5)) << "row " << r;
  }
  // reset keeps the storage but drops the rows; a new stride applies.
  m.reset(2);
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.stride(), 2u);
  const std::size_t row = m.add_row();
  EXPECT_EQ(m.at(row, 0), Value());
}

// -------------------------------------------- randomized round-trip per type --

class StoreRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};

  Value random_value_of(ValueType type) {
    switch (type) {
      case ValueType::kInt:
        return Value(rng.next_in(-1'000'000, 1'000'000));
      case ValueType::kDouble:
        return Value(double(rng.next_in(-100000, 100000)) / 16.0);
      case ValueType::kString: {
        std::string s;
        const std::size_t len = rng.next_below(12);
        for (std::size_t i = 0; i < len; ++i) {
          s += static_cast<char>('a' + rng.next_below(26));
        }
        return Value(std::move(s));
      }
      case ValueType::kIp:
        return Value(Ipv4(static_cast<std::uint32_t>(rng.next_u64())));
      case ValueType::kPrefix:
        return Value(IpPrefix(Ipv4(static_cast<std::uint32_t>(rng.next_u64())),
                              static_cast<int>(rng.next_below(33))));
    }
    return Value(0);
  }
};

TEST_P(StoreRoundTrip, TupleToRefToTupleIsIdentityForEveryValueType) {
  TupleStore store;
  const ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                              ValueType::kString, ValueType::kIp,
                              ValueType::kPrefix};
  for (ValueType type : kTypes) {
    for (int i = 0; i < 100; ++i) {
      std::vector<Value> values;
      values.emplace_back("n" + std::to_string(rng.next_below(4)));
      const std::size_t arity = 1 + rng.next_below(4);
      for (std::size_t j = 1; j < arity; ++j) {
        values.push_back(random_value_of(type));
      }
      const Tuple t("t" + std::to_string(rng.next_below(3)),
                    std::move(values));
      const TupleRef ref = store.intern(t);
      EXPECT_EQ(store.resolve(ref), t)
          << "type " << value_type_name(type) << ": " << t.to_string();
      EXPECT_EQ(store.intern(t), ref);
      EXPECT_EQ(store.resolve(ref).to_string(), t.to_string());
    }
  }
  // Interning everything again must be pure hits: no growth anywhere.
  const std::size_t tuples = store.size();
  const std::size_t values = store.values().size();
  const TupleStore::Stats before = store.stats();
  EXPECT_EQ(store.size(), tuples);
  EXPECT_EQ(store.values().size(), values);
  EXPECT_EQ(before.tuples, tuples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreRoundTrip,
                         ::testing::Values(1, 2026, 0xd1ff9u));

// ----------------------------------------------------------------- metrics --

TEST(TupleStore, StatsAndMetricsReflectInterning) {
  TupleStore store;
  store.intern(flow(1, 1));
  store.intern(flow(1, 1));
  store.intern(flow(1, 2));
  const TupleStore::Stats stats = store.stats();
  EXPECT_EQ(stats.tuples, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.hit_rate(), 0.0);

  obs::MetricsRegistry registry;
  store.publish_metrics(registry);
  EXPECT_EQ(registry.gauge("dp.store.tuples").value(), 2);
  EXPECT_EQ(registry.gauge("dp.store.values").value(),
            static_cast<std::int64_t>(store.values().size()));
  EXPECT_GT(registry.gauge("dp.store.bytes").value(), 0);
  EXPECT_EQ(registry.counter("dp.store.intern_misses").value(), 2u);
  EXPECT_EQ(registry.counter("dp.store.intern_hits").value(), 1u);
}

TEST(NamePool, InterningDeduplicatesAndResolvesStably) {
  NamePool pool;
  const NameRef a = pool.intern("flow");
  const NameRef b = pool.intern("route");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.intern("flow"), a);
  EXPECT_EQ(pool.name(a), "flow");
  EXPECT_EQ(pool.name(kNoName), "");
  EXPECT_EQ(pool.find("flow"), a);
  EXPECT_EQ(pool.find("nope"), kNoName);
  EXPECT_EQ(pool.size(), 2u);
}

}  // namespace
}  // namespace dp
