// Unit tests for src/util: hashing, IPs, strings, RNG, time intervals.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/time.h"

namespace dp {
namespace {

TEST(TimeInterval, ContainsIsHalfOpen) {
  const TimeInterval iv{10, 20};
  EXPECT_FALSE(iv.contains(9));
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(19));
  EXPECT_FALSE(iv.contains(20));
}

TEST(TimeInterval, OpenEndedContainsFarFuture) {
  const TimeInterval iv{5, kTimeInfinity};
  EXPECT_TRUE(iv.open_ended());
  EXPECT_TRUE(iv.contains(1'000'000'000));
  EXPECT_FALSE(iv.contains(4));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Hash, ChecksumHexIsStableAndDistinct) {
  const std::string a = checksum_hex("mapper-v1 bytecode");
  const std::string b = checksum_hex("mapper-v2 bytecode");
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a, checksum_hex("mapper-v1 bytecode"));
  EXPECT_NE(a, b);
}

TEST(Ipv4, ParseAndFormatRoundTrip) {
  const auto ip = Ipv4::parse("4.3.2.1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "4.3.2.1");
  EXPECT_EQ(ip->octet(0), 4);
  EXPECT_EQ(ip->octet(3), 1);
}

TEST(Ipv4, RejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("4.3.2").has_value());
  EXPECT_FALSE(Ipv4::parse("4.3.2.256").has_value());
  EXPECT_FALSE(Ipv4::parse("4.3.2.1.5").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::parse("4.3.2.1 ").has_value());
}

TEST(IpPrefix, ScenarioSdn1PrefixSemantics) {
  // The paper's SDN1 bug: 4.3.2.0/23 written as 4.3.2.0/24. The /24 must
  // cover 4.3.2.1 but not 4.3.3.1; the /23 covers both.
  const auto narrow = IpPrefix::parse("4.3.2.0/24");
  const auto wide = IpPrefix::parse("4.3.2.0/23");
  ASSERT_TRUE(narrow && wide);
  const Ipv4 good(4, 3, 2, 1);
  const Ipv4 bad(4, 3, 3, 1);
  EXPECT_TRUE(narrow->contains(good));
  EXPECT_FALSE(narrow->contains(bad));
  EXPECT_TRUE(wide->contains(good));
  EXPECT_TRUE(wide->contains(bad));
  EXPECT_TRUE(wide->covers(*narrow));
  EXPECT_FALSE(narrow->covers(*wide));
}

TEST(IpPrefix, NormalizesHostBits) {
  const IpPrefix p(Ipv4(10, 1, 2, 200), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(IpPrefix, ZeroLengthCoversEverything) {
  const IpPrefix any(Ipv4(0, 0, 0, 0), 0);
  EXPECT_TRUE(any.contains(Ipv4(255, 255, 255, 255)));
  EXPECT_TRUE(any.contains(Ipv4(0, 0, 0, 1)));
}

TEST(IpPrefix, Slash32MatchesExactlyOneAddress) {
  const IpPrefix host(Ipv4(9, 9, 9, 9), 32);
  EXPECT_TRUE(host.contains(Ipv4(9, 9, 9, 9)));
  EXPECT_FALSE(host.contains(Ipv4(9, 9, 9, 8)));
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinAndStartsWith) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_TRUE(starts_with("f_matches", "f_"));
  EXPECT_FALSE(starts_with("matches", "f_"));
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KB");
}

TEST(Logging, DisabledLevelNeverEvaluatesOperands) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return 42;
  };
  DP_DEBUG << "value=" << expensive();
  DP_WARN << "value=" << expensive();
  EXPECT_EQ(calls, 0);  // whole statement short-circuited
  DP_ERROR << "enabled level evaluates once: " << expensive();
  EXPECT_EQ(calls, 1);
  set_log_level(saved);
}

TEST(Logging, MacroIsSafeInUnbracedIfElse) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kOff);
  int branch = 0;
  // Dangling-else check: the else must bind to the outer if, not to
  // anything inside the macro expansion.
  if (branch == 0)
    DP_DEBUG << "taken";
  else
    branch = 1;
  EXPECT_EQ(branch, 0);
  set_log_level(saved);
}

TEST(Logging, ConcurrentEmissionIsSafe) {
  const LogLevel saved = log_level();
  // Emits for real (stderr): each line is one stdio call, so TSan-clean and
  // never interleaved within a line. Keep the volume small.
  set_log_level(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 3; ++i) {
        DP_ERROR << "logging-test thread=" << t << " i=" << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  set_log_level(saved);
}

}  // namespace
}  // namespace dp
